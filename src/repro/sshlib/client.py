"""The SSH client: transport, three auth methods, exec and scp."""

from __future__ import annotations

from repro.core.errors import AuthenticationFailure, ProtocolError
from repro.crypto import skey as skeymod
from repro.sshlib import channel as chanmod
from repro.sshlib import userauth
from repro.sshlib.transport import (FT_AUTH, FT_AUTH_RESULT, FT_SESSION,
                                    ClientTransport)
from repro.tls.codec import pack_fields, unpack_fields
from repro.tls.records import StreamTransport


class SshClient:
    def __init__(self, rng, *, expected_host_key=None):
        self.rng = rng
        self.expected_host_key = expected_host_key

    def connect(self, network, addr, timeout=10.0):
        sock = network.connect(addr)
        driver = ClientTransport(StreamTransport(sock, timeout), self.rng,
                                 expected_host_key=self.expected_host_key)
        channel = driver.run()
        return SshConnection(channel, driver.session_hash,
                             driver.host_key)


class SshConnection:
    def __init__(self, channel, session_hash, host_key):
        self.channel = channel
        self.session_hash = session_hash
        self.host_key = host_key
        self.authenticated_as = None

    # -- authentication methods ------------------------------------------------

    def _auth_round(self, method, user, payload):
        self.channel.send_record(FT_AUTH, userauth.pack_auth_request(
            method, user, payload))
        rtype, body = self.channel.recv_record(expect=FT_AUTH_RESULT)
        return userauth.parse_auth_result(body)

    def auth_password(self, user, password):
        result, detail = self._auth_round(userauth.AUTH_PASSWORD, user,
                                          bytes(password))
        userauth.require_auth_ok(result, detail)
        self.authenticated_as = user
        return detail

    def auth_pubkey(self, user, dsa_private):
        payload = pack_fields(
            dsa_private.public().to_bytes(),
            dsa_private.sign(
                userauth.pubkey_sign_payload(self.session_hash, user),
                _SigRng()))
        result, detail = self._auth_round(userauth.AUTH_PUBKEY, user,
                                          payload)
        userauth.require_auth_ok(result, detail)
        self.authenticated_as = user
        return detail

    def auth_skey(self, user, password):
        result, detail = self._auth_round(userauth.AUTH_SKEY, user, b"")
        if result != userauth.RESULT_CHALLENGE:
            raise AuthenticationFailure("expected an S/Key challenge")
        count_bytes, seed = unpack_fields(detail, 2)
        count = int(count_bytes.decode())
        response = skeymod.respond(bytes(password), seed, count)
        result, detail = self._auth_round(userauth.AUTH_SKEY, user,
                                          response)
        userauth.require_auth_ok(result, detail)
        self.authenticated_as = user
        return detail

    def skey_challenge(self, user):
        """Fetch a challenge without answering (probe attacks use this)."""
        result, detail = self._auth_round(userauth.AUTH_SKEY, user, b"")
        if result != userauth.RESULT_CHALLENGE:
            return None
        count_bytes, seed = unpack_fields(detail, 2)
        return int(count_bytes.decode()), seed

    # -- session -------------------------------------------------------------------

    def exec(self, cmdline):
        self.channel.send_record(FT_SESSION, chanmod.pack_session(
            chanmod.CMD_EXEC, cmdline.encode()))
        return chanmod.recv_file(self.channel, FT_SESSION)

    def scp_upload(self, path, data):
        self.channel.send_record(FT_SESSION, chanmod.pack_session(
            chanmod.CMD_SCP_UPLOAD, path.encode()))
        chanmod.send_file(self.channel, FT_SESSION, data)
        rtype, body = self.channel.recv_record(expect=FT_SESSION)
        cmd, fields = chanmod.parse_session(body)
        if cmd == chanmod.CMD_ERROR:
            raise ProtocolError(fields[0].decode(errors="replace"))
        if cmd != chanmod.CMD_DONE:
            raise ProtocolError("scp upload not acknowledged")

    def scp_download(self, path):
        self.channel.send_record(FT_SESSION, chanmod.pack_session(
            chanmod.CMD_SCP_DOWNLOAD, path.encode()))
        return chanmod.recv_file(self.channel, FT_SESSION)

    def close(self):
        try:
            self.channel.send_record(FT_SESSION,
                                     chanmod.pack_session(chanmod.CMD_EXIT))
        except Exception:
            pass
        self.channel.close()


class _SigRng:
    """Deterministic per-signature nonce source for client signing.

    Derives from a module-level counter; adequate for the simulation
    (see the security disclaimer in DESIGN.md).
    """

    _counter = 0

    def __init__(self):
        from repro.crypto.rng import DetRNG
        _SigRng._counter += 1
        self._rng = DetRNG(f"ssh-client-sig-{_SigRng._counter}")

    def randint(self, lo, hi):
        return self._rng.randint(lo, hi)
