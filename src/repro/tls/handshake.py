"""Handshake message types for the simplified SSL protocol.

The message flow (RSA key exchange, as in paper section 5.1 — ephemeral
RSA is not used, matching the paper's assumption):

.. code-block:: none

    Client                                   Server
    ClientHello(cr, [session_id], ext)  --->
                                        <---  ServerHello(sr, session_id,
                                                          resumed?)
                                        <---  Certificate(rsa_pub)   [new]
    ClientKeyExchange(E_pub(premaster)) --->                         [new]
    ChangeCipherSpec, Finished          --->
                                        <---  ChangeCipherSpec, Finished
    ApplicationData                     <-->  ApplicationData

Each message is ``u8 type || length-prefixed fields``.  The transcript
hash is SHA-256 over the concatenated cleartext messages, and both
Finished payloads are ``PRF(master, label, transcript_hash)``.

ClientHello carries an opaque *extensions* field.  The simulated
buffer-overflow vulnerability of the Apache worker lives in the parsing
of this field (see :mod:`repro.attacks.exploit`): a hostile extension
hijacks the parsing compartment, which is exactly the paper's
network-facing-exploit threat model.
"""

from __future__ import annotations

import hashlib

from repro.core.errors import ProtocolError
from repro.tls.codec import pack_fields, pack_u8, unpack_fields

HS_CLIENT_HELLO = 1
HS_SERVER_HELLO = 2
HS_CERTIFICATE = 11
HS_SERVER_KEY_EXCHANGE = 12
HS_CLIENT_KEY_EXCHANGE = 16
HS_FINISHED = 20

#: Certificate flag: an ephemeral ServerKeyExchange follows.
CERT_FLAG_EPHEMERAL = 0x01

RANDOM_LEN = 32
SESSION_ID_LEN = 16


class ClientHello:
    def __init__(self, client_random, session_id=b"", extensions=b""):
        self.client_random = client_random
        self.session_id = session_id
        self.extensions = extensions

    def pack(self):
        return pack_u8(HS_CLIENT_HELLO) + pack_fields(
            self.client_random, self.session_id, self.extensions)

    @classmethod
    def parse(cls, body):
        cr, sid, ext = unpack_fields(body, 3)
        if len(cr) != RANDOM_LEN:
            raise ProtocolError("bad client random length")
        if sid and len(sid) != SESSION_ID_LEN:
            raise ProtocolError("bad session id length")
        return cls(cr, sid, ext)


class ServerHello:
    def __init__(self, server_random, session_id, resumed):
        self.server_random = server_random
        self.session_id = session_id
        self.resumed = resumed

    def pack(self):
        return pack_u8(HS_SERVER_HELLO) + pack_fields(
            self.server_random, self.session_id,
            b"\x01" if self.resumed else b"\x00")

    @classmethod
    def parse(cls, body):
        sr, sid, flag = unpack_fields(body, 3)
        if len(sr) != RANDOM_LEN:
            raise ProtocolError("bad server random length")
        if flag not in (b"\x00", b"\x01"):
            raise ProtocolError("bad resumption flag")
        return cls(sr, sid, flag == b"\x01")


class Certificate:
    def __init__(self, pubkey_bytes, server_name=b"", flags=0):
        self.pubkey_bytes = pubkey_bytes
        self.server_name = server_name
        self.flags = flags

    def pack(self):
        return pack_u8(HS_CERTIFICATE) + pack_fields(
            self.pubkey_bytes, self.server_name, bytes([self.flags]))

    @classmethod
    def parse(cls, body):
        pub, name, flags = unpack_fields(body, 3)
        if len(flags) != 1:
            raise ProtocolError("bad certificate flags")
        return cls(pub, name, flags[0])

    @property
    def ephemeral(self):
        return bool(self.flags & CERT_FLAG_EPHEMERAL)


class ServerKeyExchange:
    """Ephemeral-RSA key exchange (forward secrecy, paper §5.1.1).

    The server mints a per-connection RSA key pair and signs the
    ephemeral public key — bound to both handshake randoms — with its
    long-term key.  The client encrypts the premaster to the ephemeral
    key, so a *future* compromise of the long-term key cannot decrypt
    recorded sessions.  The paper presumes this mode off, "rarely used
    in practice because of [its] high computational cost"; the ablation
    benchmark quantifies that cost.
    """

    def __init__(self, ephemeral_pub_bytes, signature):
        self.ephemeral_pub_bytes = ephemeral_pub_bytes
        self.signature = signature

    def pack(self):
        return pack_u8(HS_SERVER_KEY_EXCHANGE) + pack_fields(
            self.ephemeral_pub_bytes, self.signature)

    @classmethod
    def parse(cls, body):
        pub, sig = unpack_fields(body, 2)
        return cls(pub, sig)

    @staticmethod
    def signed_payload(ephemeral_pub_bytes, client_random,
                       server_random):
        return pack_fields(ephemeral_pub_bytes, client_random,
                           server_random)


class ClientKeyExchange:
    def __init__(self, encrypted_premaster):
        self.encrypted_premaster = encrypted_premaster

    def pack(self):
        return pack_u8(HS_CLIENT_KEY_EXCHANGE) + pack_fields(
            self.encrypted_premaster)

    @classmethod
    def parse(cls, body):
        (epms,) = unpack_fields(body, 1)
        return cls(epms)


class Finished:
    def __init__(self, verify_data):
        self.verify_data = verify_data

    def pack(self):
        return pack_u8(HS_FINISHED) + pack_fields(self.verify_data)

    @classmethod
    def parse(cls, body):
        (vd,) = unpack_fields(body, 1)
        return cls(vd)


_PARSERS = {
    HS_CLIENT_HELLO: ClientHello,
    HS_SERVER_HELLO: ServerHello,
    HS_CERTIFICATE: Certificate,
    HS_SERVER_KEY_EXCHANGE: ServerKeyExchange,
    HS_CLIENT_KEY_EXCHANGE: ClientKeyExchange,
    HS_FINISHED: Finished,
}


def parse_handshake(data, expect=None):
    """Parse one handshake message; optionally require its type."""
    if not data:
        raise ProtocolError("empty handshake message")
    msg_type = data[0]
    parser = _PARSERS.get(msg_type)
    if parser is None:
        raise ProtocolError(f"unknown handshake type {msg_type}")
    if expect is not None and msg_type != expect:
        raise ProtocolError(
            f"expected handshake type {expect}, got {msg_type}")
    return parser.parse(data[1:])


class Transcript:
    """Chained hash over the cleartext handshake messages.

    ``th_n = SHA256(th_{n-1} || message_n)`` with ``th_0 = ""``.  Chaining
    (rather than one running SHA-256 state) lets the partitioned server
    split the transcript across compartments: the ``receive_finished``
    callgate extends the hash with the client Finished cleartext that the
    handshake sthread never sees (paper Figure 4), using
    :func:`extend_transcript`.
    """

    def __init__(self, initial=b""):
        self._th = initial
        self.message_count = 0

    def add(self, packed_message):
        self._th = extend_transcript(self._th, packed_message)
        self.message_count += 1

    def digest(self):
        return self._th


def extend_transcript(th, packed_message):
    """One chaining step (usable with a bare hash value inside a gate)."""
    return hashlib.sha256(th + packed_message).digest()
