"""Simplified SSL: record layer, RSA handshake, session cache, client.

Faithful to the properties the paper's partitioning relies on (section
5.1): the session key is a PRF over two public randoms and an
RSA-encrypted premaster; Finished messages bind the transcript; records
are MAC-then-encrypt with sequence numbers; sessions can be cached and
resumed.
"""

from repro.tls import codec, handshake, records, server_core
from repro.tls.client import TlsClient, TlsConnection
from repro.tls.records import (KernelSocketTransport, RecordChannel,
                               StreamTransport)
from repro.tls.session_cache import SessionCache

__all__ = ["KernelSocketTransport", "RecordChannel", "SessionCache",
           "StreamTransport", "TlsClient", "TlsConnection", "codec",
           "handshake", "records", "server_core"]
