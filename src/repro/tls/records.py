"""The record layer: framing, MAC-then-encrypt, sequence numbers.

Two layers of API, because the partitioned server needs to split them:

* **Stateless sealing** — :func:`seal_record` / :func:`open_record` take
  explicit keys and a sequence number and process one record.  This is
  what runs *inside callgates*: the SSL handshake sthread hands the
  opaque wire bytes to ``receive_finished``; ``ssl_read``/``ssl_write``
  keep their sequence numbers in tagged memory.  The per-record cipher
  nonce is the sequence number, so no cipher state crosses records.

* **A stateful channel** — :class:`RecordChannel` wraps a transport and
  tracks sequence numbers and keys for both directions.  The monolithic
  servers and the client use it directly.

Injected or replayed records fail the MAC (which covers the sequence
number, record type and length) and raise
:class:`~repro.core.errors.MacFailure` — the property the client-handler
phase's security rests on (paper section 5.1.2).
"""

from __future__ import annotations

from repro.core.errors import ConnectionClosed, MacFailure, ProtocolError
from repro.crypto.mac import DIGEST_SIZE, constant_time_eq, hmac_sha256
from repro.crypto.stream import StreamCipher

#: Record types (TLS numbering where it exists).
RT_ALERT = 21
RT_HANDSHAKE = 22
RT_APPDATA = 23
RT_CHANGE_CIPHER = 20

_HEADER_LEN = 5
MAX_RECORD = 1 << 20


def _mac_input(seq, rtype, payload):
    return (seq.to_bytes(8, "big") + bytes([rtype]) +
            len(payload).to_bytes(4, "big") + payload)


def seal_record(enc_key, mac_key, seq, rtype, payload):
    """MAC-then-encrypt one record body; returns the wire body bytes."""
    mac = hmac_sha256(mac_key, _mac_input(seq, rtype, payload))
    cipher = StreamCipher(enc_key, nonce=seq.to_bytes(8, "big"))
    return cipher.encrypt(payload + mac)


def open_record(enc_key, mac_key, seq, rtype, wire):
    """Decrypt and verify one record body; raises MacFailure on tamper."""
    if len(wire) < DIGEST_SIZE:
        raise MacFailure("record shorter than its MAC")
    cipher = StreamCipher(enc_key, nonce=seq.to_bytes(8, "big"))
    plain = cipher.decrypt(wire)
    payload, mac = plain[:-DIGEST_SIZE], plain[-DIGEST_SIZE:]
    expected = hmac_sha256(mac_key, _mac_input(seq, rtype, payload))
    if not constant_time_eq(mac, expected):
        raise MacFailure(
            f"record MAC verification failed (seq={seq}, type={rtype})")
    return payload


def frame(rtype, body):
    """Wire framing: type(1) | length(4) | body."""
    if len(body) > MAX_RECORD:
        raise ProtocolError("record too large")
    return bytes([rtype]) + len(body).to_bytes(4, "big") + body


def read_frame(transport):
    """Read one framed record from *transport*; returns (type, body)."""
    header = transport.recv_exact(_HEADER_LEN)
    rtype = header[0]
    length = int.from_bytes(header[1:5], "big")
    if length > MAX_RECORD:
        raise ProtocolError(f"oversized record ({length} bytes)")
    body = transport.recv_exact(length) if length else b""
    return rtype, body


class Directions:
    """Key material for one direction of a channel."""

    __slots__ = ("enc_key", "mac_key", "seq")

    def __init__(self, enc_key, mac_key):
        self.enc_key = enc_key
        self.mac_key = mac_key
        self.seq = 0


class RecordChannel:
    """Stateful record channel over a transport.

    Starts in cleartext; :meth:`activate_send` / :meth:`activate_recv`
    switch a direction to sealed records (the ChangeCipherSpec moment).
    """

    def __init__(self, transport):
        self.transport = transport
        self._send = None
        self._recv = None

    def activate_send(self, enc_key, mac_key):
        self._send = Directions(enc_key, mac_key)

    def activate_recv(self, enc_key, mac_key):
        self._recv = Directions(enc_key, mac_key)

    @property
    def send_protected(self):
        return self._send is not None

    @property
    def recv_protected(self):
        return self._recv is not None

    def send_record(self, rtype, payload):
        if self._send is None:
            body = payload
        else:
            body = seal_record(self._send.enc_key, self._send.mac_key,
                               self._send.seq, rtype, payload)
            self._send.seq += 1
        self.transport.send(frame(rtype, body))

    def recv_record(self, expect=None):
        rtype, body = read_frame(self.transport)
        if self._recv is None:
            payload = body
        else:
            payload = open_record(self._recv.enc_key, self._recv.mac_key,
                                  self._recv.seq, rtype, body)
            self._recv.seq += 1
        if expect is not None and rtype != expect:
            raise ProtocolError(
                f"expected record type {expect}, got {rtype}")
        return rtype, payload

    def close(self):
        close = getattr(self.transport, "close", None)
        if close is not None:
            close()


class KernelSocketTransport:
    """Transport over a kernel fd — every byte obeys the compartment's
    fd permissions (how "no network write for client_handler" is real)."""

    def __init__(self, kernel, fd, timeout=30.0):
        self.kernel = kernel
        self.fd = fd
        self.timeout = timeout

    def send(self, data):
        self.kernel.send(self.fd, data)

    def recv_exact(self, size):
        return self.kernel.recv_exact(self.fd, size, self.timeout)

    def close(self):
        try:
            self.kernel.close(self.fd)
        except Exception:
            pass


class StreamTransport:
    """Transport directly over a DuplexStream (clients, attackers)."""

    def __init__(self, sock, timeout=30.0):
        self.sock = sock
        self.timeout = timeout

    def send(self, data):
        self.sock.send(data)

    def recv_exact(self, size):
        return self.sock.recv_exact(size, self.timeout)

    def close(self):
        self.sock.close()


def read_raw_frame_bytes(transport):
    """Read one frame and return it *unopened* as raw wire bytes.

    The SSL handshake sthread uses this to receive the client's encrypted
    Finished record without being able to decrypt it — it forwards the
    bytes to the ``receive_finished`` callgate (paper Figure 4).
    """
    rtype, body = read_frame(transport)
    return rtype, body


class ChannelClosed(ConnectionClosed):
    """Convenience re-export for callers catching channel EOF."""
