"""Server-side SSL session cache (paper Table 2's cached workload).

Maps session ids to master secrets so returning clients can resume
without the RSA key exchange — which is why the cached workload makes
Wedge's per-request compartment costs the dominant term (paper section
6).  Bounded LRU with an explicit hit/miss counter for the benchmarks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class SessionCache:
    """Thread-safe bounded LRU of session_id -> master secret."""

    def __init__(self, capacity=1024):
        self.capacity = capacity
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def store(self, session_id, master):
        with self._lock:
            self._entries[session_id] = master
            self._entries.move_to_end(session_id)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def lookup(self, session_id):
        """Return the cached master or None (counts hit/miss)."""
        if not session_id:
            return None
        with self._lock:
            master = self._entries.get(session_id)
            if master is None:
                self.misses += 1
                return None
            self._entries.move_to_end(session_id)
            self.hits += 1
            return master

    def invalidate(self, session_id):
        with self._lock:
            self._entries.pop(session_id, None)

    def __len__(self):
        with self._lock:
            return len(self._entries)
