"""Tiny binary codec: length-prefixed fields for protocol messages.

All TLS-like and SSH-like messages in this repository serialise as a
sequence of 3-byte-length-prefixed byte fields.  Deliberately minimal;
malformed input raises :class:`~repro.core.errors.ProtocolError`, never
an arbitrary Python exception — peers must not be able to crash a
compartment with anything other than a simulated exploit.
"""

from __future__ import annotations

from repro.core.errors import ProtocolError

_LEN = 3
_MAX = (1 << (8 * _LEN)) - 1


def pack_fields(*fields):
    """Concatenate fields, each prefixed with a 3-byte big-endian length."""
    out = bytearray()
    for field in fields:
        field = bytes(field)
        if len(field) > _MAX:
            raise ProtocolError("field too large to encode")
        out += len(field).to_bytes(_LEN, "big") + field
    return bytes(out)


def unpack_fields(data, count=None):
    """Split *data* back into its fields.

    With *count*, exactly that many fields are required and trailing
    bytes are an error; without, all fields present are returned.
    """
    fields = []
    off = 0
    while off < len(data):
        if off + _LEN > len(data):
            raise ProtocolError("truncated field length")
        length = int.from_bytes(data[off:off + _LEN], "big")
        off += _LEN
        if off + length > len(data):
            raise ProtocolError("truncated field body")
        fields.append(data[off:off + length])
        off += length
        if count is not None and len(fields) > count:
            raise ProtocolError(f"expected {count} fields, got more")
    if count is not None and len(fields) != count:
        raise ProtocolError(
            f"expected {count} fields, got {len(fields)}")
    return fields


def pack_u8(value):
    if not 0 <= value <= 0xFF:
        raise ProtocolError("u8 out of range")
    return bytes([value])


def pack_u64(value):
    if not 0 <= value < (1 << 64):
        raise ProtocolError("u64 out of range")
    return value.to_bytes(8, "big")


def unpack_u64(data):
    if len(data) != 8:
        raise ProtocolError("bad u64 encoding")
    return int.from_bytes(data, "big")
