"""Server-side SSL logic: privileged pieces plus a monolithic driver.

The privileged operations are exposed as *pure functions over bytes* so
the partitioned Apache variants can run each inside exactly the callgate
the paper assigns it (Figures 2 and 4): nothing here touches the network
or global state, and key material goes in and out as byte strings that
the applications keep in tagged memory.

:class:`ServerHandshake` then composes those functions into the complete
monolithic handshake used by vanilla httpd — the baseline in which every
one of these operations runs with full privilege in one compartment.
"""

from __future__ import annotations

from repro.core.errors import HandshakeFailure, ProtocolError
from repro.crypto.mac import constant_time_eq
from repro.crypto.prf import (derive_key_block, derive_master_secret,
                              finished_verify_data)
from repro.crypto.rsa import RsaPrivateKey, generate_keypair
from repro.tls import records
from repro.tls.handshake import (CERT_FLAG_EPHEMERAL, HS_CLIENT_HELLO,
                                 HS_CLIENT_KEY_EXCHANGE, HS_FINISHED,
                                 RANDOM_LEN, SESSION_ID_LEN, Certificate,
                                 ClientHello, Finished, ServerHello,
                                 ServerKeyExchange, Transcript,
                                 parse_handshake)
from repro.tls.records import (RT_APPDATA, RT_CHANGE_CIPHER, RT_HANDSHAKE,
                               RecordChannel)

# ---------------------------------------------------------------------------
# privileged primitives (callgate bodies call these)
# ---------------------------------------------------------------------------


def gen_server_random(rng):
    """The server's contribution to session-key generation.

    In the partitioned servers this runs *inside* the setup-session-key
    callgate, never in the worker: an exploited worker must not dictate
    the server random, or it could force session-key reuse (paper
    section 5.1.1).
    """
    return rng.bytes(RANDOM_LEN)


def make_session_id(rng):
    return rng.bytes(SESSION_ID_LEN)


def setup_master_secret(private_key_bytes, encrypted_premaster,
                        client_random, server_random):
    """Decrypt the premaster under the RSA key; derive the master secret.

    The only function in the SSL path that reads the private key.
    Raises :class:`HandshakeFailure` on bad padding — deliberately the
    same failure as any other malformed handshake, leaking nothing about
    the key.
    """
    key = RsaPrivateKey.from_bytes(private_key_bytes)
    try:
        premaster = key.decrypt(encrypted_premaster)
    except Exception as exc:
        raise HandshakeFailure("client key exchange failed") from exc
    return derive_master_secret(premaster, client_random, server_random)


def session_keys(master, client_random, server_random):
    """Expand the master secret into the four channel keys."""
    return derive_key_block(master, client_random, server_random)


def check_client_finished(master, transcript_hash, verify_data):
    """Validate the client's Finished payload; returns bool only.

    Returning a bare boolean is the point: when this runs in the
    ``receive_finished`` callgate, an exploited handshake sthread that
    feeds it arbitrary ciphertext learns success/failure and nothing else
    (paper section 5.1.2).
    """
    expected = finished_verify_data(master, "client finished",
                                    transcript_hash)
    return constant_time_eq(expected, verify_data)


def make_server_finished(master, transcript_hash):
    return finished_verify_data(master, "server finished", transcript_hash)


def open_finished_record(keys, seq, wire_body):
    """Decrypt the client's Finished record and parse its verify data.

    Used inside ``receive_finished``: the handshake sthread passes the
    sealed wire bytes it cannot read.  Raises
    :class:`~repro.core.errors.MacFailure` or ProtocolError on tampering.
    """
    payload = records.open_record(keys["client_enc"], keys["client_mac"],
                                  seq, RT_HANDSHAKE, wire_body)
    finished = parse_handshake(payload, expect=HS_FINISHED)
    return finished.verify_data


def seal_server_finished(keys, seq, verify_data):
    """Seal the server's Finished message into wire bytes.

    Used inside ``send_finished``; the handshake sthread transmits the
    result without being able to forge a different one.
    """
    payload = Finished(verify_data).pack()
    return records.seal_record(keys["server_enc"], keys["server_mac"],
                               seq, RT_HANDSHAKE, payload)


# ---------------------------------------------------------------------------
# the monolithic driver (vanilla httpd baseline)
# ---------------------------------------------------------------------------


class ServerHandshake:
    """Complete server-side handshake in one privileged compartment."""

    def __init__(self, transport, private_key, rng, *, session_cache=None,
                 server_name=b"wedge-httpd", on_client_hello=None,
                 ephemeral=False, ephemeral_bits=512):
        self.channel = RecordChannel(transport)
        self.private_key = private_key
        self.rng = rng
        self.session_cache = session_cache
        self.server_name = server_name
        #: forward secrecy: mint a per-connection RSA key (paper
        #: §5.1.1 presumes this off — "high computational cost")
        self.ephemeral = ephemeral
        self.ephemeral_bits = ephemeral_bits
        #: hook run on the parsed ClientHello — the monolithic server's
        #: untrusted-input surface (carries the simulated vulnerability)
        self.on_client_hello = on_client_hello
        self.resumed = None   # set by run()
        self.master = None
        self.client_random = None
        self.server_random = None

    def run(self):
        """Execute the handshake; returns the protected RecordChannel."""
        channel = self.channel
        transcript = Transcript()

        rtype, body = channel.recv_record(expect=RT_HANDSHAKE)
        hello = parse_handshake(body, expect=HS_CLIENT_HELLO)
        if self.on_client_hello is not None:
            self.on_client_hello(hello)
        transcript.add(body)
        self.client_random = hello.client_random

        cached = (self.session_cache.lookup(hello.session_id)
                  if self.session_cache is not None else None)
        self.resumed = cached is not None
        session_id = (hello.session_id if self.resumed
                      else make_session_id(self.rng))
        self.server_random = gen_server_random(self.rng)

        server_hello = ServerHello(self.server_random, session_id,
                                   self.resumed).pack()
        channel.send_record(RT_HANDSHAKE, server_hello)
        transcript.add(server_hello)

        if self.resumed:
            self.master = cached
        else:
            flags = CERT_FLAG_EPHEMERAL if self.ephemeral else 0
            cert = Certificate(self.private_key.public().to_bytes(),
                               self.server_name, flags).pack()
            channel.send_record(RT_HANDSHAKE, cert)
            transcript.add(cert)

            decrypting_key = self.private_key
            if self.ephemeral:
                # per-connection key pair: the dominant cost of this
                # mode, and the reason it is rarely enabled
                ephemeral_key = generate_keypair(self.rng,
                                                 self.ephemeral_bits)
                pub_bytes = ephemeral_key.public().to_bytes()
                signature = self.private_key.sign(
                    ServerKeyExchange.signed_payload(
                        pub_bytes, self.client_random,
                        self.server_random))
                ske = ServerKeyExchange(pub_bytes, signature).pack()
                channel.send_record(RT_HANDSHAKE, ske)
                transcript.add(ske)
                decrypting_key = ephemeral_key

            rtype, body = channel.recv_record(expect=RT_HANDSHAKE)
            cke = parse_handshake(body, expect=HS_CLIENT_KEY_EXCHANGE)
            transcript.add(body)
            self.master = setup_master_secret(
                decrypting_key.to_bytes(), cke.encrypted_premaster,
                self.client_random, self.server_random)

        keys = session_keys(self.master, self.client_random,
                            self.server_random)

        channel.recv_record(expect=RT_CHANGE_CIPHER)
        channel.activate_recv(keys["client_enc"], keys["client_mac"])

        rtype, body = channel.recv_record(expect=RT_HANDSHAKE)
        finished = parse_handshake(body, expect=HS_FINISHED)
        if not check_client_finished(self.master, transcript.digest(),
                                     finished.verify_data):
            raise HandshakeFailure("client Finished verification failed")
        transcript.add(Finished(finished.verify_data).pack())

        channel.send_record(RT_CHANGE_CIPHER, b"")
        channel.activate_send(keys["server_enc"], keys["server_mac"])
        verify = make_server_finished(self.master, transcript.digest())
        channel.send_record(RT_HANDSHAKE, Finished(verify).pack())

        if self.session_cache is not None and not self.resumed:
            self.session_cache.store(session_id, self.master)
        return channel


def serve_app_data(channel, handler):
    """Drive one request/response exchange over a protected channel.

    Reads application-data records until the handler says the request is
    complete, then writes the response.  Returns the request bytes.
    """
    request = bytearray()
    while True:
        rtype, payload = channel.recv_record()
        if rtype != RT_APPDATA:
            raise ProtocolError(f"unexpected record type {rtype}")
        request += payload
        if handler.request_complete(bytes(request)):
            break
    response = handler.respond(bytes(request))
    channel.send_record(RT_APPDATA, response)
    return bytes(request)
