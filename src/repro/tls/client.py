"""The SSL client: handshake driver and application channel.

Clients run outside any Wedge kernel (they model remote machines), over a
raw :class:`~repro.net.stream.DuplexStream`.  Besides honest operation,
the client exposes the knobs attacks need: arbitrary ClientHello
extensions (the exploit vector) and explicit session resumption state.
"""

from __future__ import annotations

from repro.core.errors import HandshakeFailure, ProtocolError
from repro.crypto.mac import constant_time_eq
from repro.crypto.prf import (derive_key_block, derive_master_secret,
                              finished_verify_data)
from repro.crypto.rsa import RsaPublicKey
from repro.tls.handshake import (HS_CERTIFICATE, HS_FINISHED,
                                 HS_SERVER_HELLO,
                                 HS_SERVER_KEY_EXCHANGE, RANDOM_LEN,
                                 ClientHello, ClientKeyExchange, Finished,
                                 ServerKeyExchange, Transcript,
                                 parse_handshake)
from repro.tls.records import (RT_APPDATA, RT_CHANGE_CIPHER, RT_HANDSHAKE,
                               RecordChannel, StreamTransport)

PREMASTER_LEN = 32


class ClientSession:
    """Resumption state a client carries between connections."""

    def __init__(self, session_id, master):
        self.session_id = session_id
        self.master = master


class TlsClient:
    """One client identity: RNG, expected server key, resumption cache."""

    def __init__(self, rng, *, expected_server_key=None):
        self.rng = rng
        self.expected_server_key = expected_server_key
        self.session = None
        self.last_resumed = None

    def connect(self, network, addr, *, extensions=b"", resume=True,
                timeout=10.0):
        """Handshake over a fresh connection; returns a TlsConnection."""
        sock = network.connect(addr)
        return self.handshake(sock, extensions=extensions, resume=resume,
                              timeout=timeout)

    def handshake(self, sock, *, extensions=b"", resume=True,
                  timeout=10.0):
        channel = RecordChannel(StreamTransport(sock, timeout))
        transcript = Transcript()

        client_random = self.rng.bytes(RANDOM_LEN)
        offered_sid = (self.session.session_id
                       if resume and self.session is not None else b"")
        hello = ClientHello(client_random, offered_sid, extensions).pack()
        channel.send_record(RT_HANDSHAKE, hello)
        transcript.add(hello)

        rtype, body = channel.recv_record(expect=RT_HANDSHAKE)
        server_hello = parse_handshake(body, expect=HS_SERVER_HELLO)
        transcript.add(body)
        server_random = server_hello.server_random
        self.last_resumed = server_hello.resumed

        if server_hello.resumed:
            if self.session is None or \
                    server_hello.session_id != self.session.session_id:
                raise HandshakeFailure("server resumed an unknown session")
            master = self.session.master
        else:
            rtype, body = channel.recv_record(expect=RT_HANDSHAKE)
            cert = parse_handshake(body, expect=HS_CERTIFICATE)
            transcript.add(body)
            server_key = RsaPublicKey.from_bytes(cert.pubkey_bytes)
            if (self.expected_server_key is not None
                    and server_key != self.expected_server_key):
                raise HandshakeFailure(
                    "server key does not match the pinned key")
            encrypting_key = server_key
            if cert.ephemeral:
                # forward secrecy: verify the server-signed ephemeral
                # key and encrypt the premaster to it instead
                rtype, body = channel.recv_record(expect=RT_HANDSHAKE)
                ske = parse_handshake(body,
                                      expect=HS_SERVER_KEY_EXCHANGE)
                transcript.add(body)
                payload = ServerKeyExchange.signed_payload(
                    ske.ephemeral_pub_bytes, client_random,
                    server_random)
                if not server_key.verify(payload, ske.signature):
                    raise HandshakeFailure(
                        "ephemeral key signature verification failed")
                encrypting_key = RsaPublicKey.from_bytes(
                    ske.ephemeral_pub_bytes)
            premaster = self.rng.bytes(PREMASTER_LEN)
            encrypted = encrypting_key.encrypt(premaster, self.rng)
            cke = ClientKeyExchange(encrypted).pack()
            channel.send_record(RT_HANDSHAKE, cke)
            transcript.add(cke)
            master = derive_master_secret(premaster, client_random,
                                          server_random)

        keys = derive_key_block(master, client_random, server_random)

        channel.send_record(RT_CHANGE_CIPHER, b"")
        channel.activate_send(keys["client_enc"], keys["client_mac"])
        verify = finished_verify_data(master, "client finished",
                                      transcript.digest())
        finished = Finished(verify).pack()
        channel.send_record(RT_HANDSHAKE, finished)
        transcript.add(finished)

        channel.recv_record(expect=RT_CHANGE_CIPHER)
        channel.activate_recv(keys["server_enc"], keys["server_mac"])
        rtype, body = channel.recv_record(expect=RT_HANDSHAKE)
        server_finished = parse_handshake(body, expect=HS_FINISHED)
        expected = finished_verify_data(master, "server finished",
                                        transcript.digest())
        if not constant_time_eq(expected, server_finished.verify_data):
            raise HandshakeFailure("server Finished verification failed")

        self.session = ClientSession(server_hello.session_id, master)
        return TlsConnection(channel, master=master, keys=keys,
                             resumed=server_hello.resumed)


class TlsConnection:
    """An established client-side connection."""

    def __init__(self, channel, *, master, keys, resumed):
        self.channel = channel
        self.master = master
        self.keys = keys
        self.resumed = resumed

    def send(self, data):
        self.channel.send_record(RT_APPDATA, data)

    def recv(self):
        rtype, payload = self.channel.recv_record()
        if rtype != RT_APPDATA:
            raise ProtocolError(f"unexpected record type {rtype}")
        return payload

    def request(self, data):
        self.send(data)
        return self.recv()

    def close(self):
        self.channel.close()
