"""``repro.disk``: a simulated block device with honest crash semantics.

Durability in this simulation is *earned*, not assumed.  A
:class:`SimDisk` models the storage stack the way crash-consistency
literature does (and the way ARIES-style recovery requires):

* ``write`` only *buffers*: the bytes land in an ordered stream of
  sector-granular sub-writes (a logical write that crosses a sector
  boundary is split), visible to subsequent reads (the buffer cache)
  but **not durable**;
* ``fsync`` is the one barrier: every buffered sub-write is applied to
  the durable image, in order, atomically per sector;
* a **power loss** snapshots the device at an *arbitrary, possibly
  reordered prefix* of the unflushed stream: each sector independently
  retains a seeded prefix of its own sub-write sequence.  Sector writes
  are atomic (the standard disk contract) but a multi-sector logical
  write may be torn at sector boundaries, and later writes may be
  durable while earlier writes to *other* sectors are not.

The kernel exposes the device through the ``sc_disk_*`` traced syscall
family (:meth:`~repro.core.kernel.Kernel.disk_open` /
``disk_read`` / ``disk_write`` / ``disk_fsync``), priced on the
deterministic cost model, and :meth:`~repro.core.kernel.Kernel.kill`
grew ``power_loss=True`` — the whole-machine fault that makes crash
recovery a first-class, testable input.

The device object itself deliberately lives *outside* any kernel: it is
the platter, not the machine.  A killed kernel's disks survive and can
be re-opened by a fresh incarnation, which is exactly how the kv tier's
write-ahead log recovers (:mod:`repro.apps.kv.wal`).
"""

from __future__ import annotations

import threading

from repro.core.errors import WedgeError

#: Default sector size (bytes).  Small relative to real hardware so the
#: torn-write surface is rich: a ~1 KiB kv value spans many sectors.
SECTOR_SIZE = 64

#: Default device capacity (bytes).
DEFAULT_DISK_SIZE = 1 << 18


class DiskError(WedgeError):
    """Bad device usage: out-of-range I/O, bad geometry."""


class SimDisk:
    """One simulated block device: a durable image plus a write buffer.

    Thread-safe: the kv tier's storage gate and a kernel kill can race.
    """

    def __init__(self, size=DEFAULT_DISK_SIZE, *, sector=SECTOR_SIZE,
                 name="disk0"):
        size, sector = int(size), int(sector)
        if sector <= 0 or size <= 0 or size % sector:
            raise DiskError(
                f"bad geometry: size={size} sector={sector}")
        self.size = size
        self.sector = sector
        self.name = name
        self._durable = bytearray(size)
        #: ordered unflushed sub-writes, none crossing a sector boundary
        self._pending = []   # [(offset, bytes)]
        self._lock = threading.Lock()
        # lifetime counters (diagnostics and the observe events)
        self.writes = 0          # logical write() calls
        self.flushes = 0         # fsync barriers completed
        self.power_losses = 0    # power_loss() events applied

    # -- geometry ----------------------------------------------------------

    def _check_range(self, offset, size):
        if offset < 0 or size < 0 or offset + size > self.size:
            raise DiskError(
                f"I/O beyond device: offset={offset} size={size} "
                f"capacity={self.size}")

    def sector_span(self, offset, size):
        """How many sectors the byte range [offset, offset+size) touches."""
        if size <= 0:
            return 0
        first = offset // self.sector
        last = (offset + size - 1) // self.sector
        return last - first + 1

    def _split(self, offset, data):
        """Split one logical write into sector-contained sub-writes."""
        out = []
        pos = 0
        while pos < len(data):
            at = offset + pos
            room = self.sector - (at % self.sector)
            take = min(room, len(data) - pos)
            out.append((at, bytes(data[pos:pos + take])))
            pos += take
        return out

    # -- the buffered data path --------------------------------------------

    def read(self, offset, size):
        """Read through the buffer cache: durable image overlaid with
        every pending sub-write, in stream order."""
        self._check_range(offset, size)
        with self._lock:
            view = bytearray(self._durable[offset:offset + size])
            for at, chunk in self._pending:
                lo = max(at, offset)
                hi = min(at + len(chunk), offset + size)
                if lo < hi:
                    view[lo - offset:hi - offset] = \
                        chunk[lo - at:hi - at]
            return bytes(view)

    def write(self, offset, data):
        """Buffer one logical write; durable only after :meth:`fsync`."""
        data = bytes(data)
        self._check_range(offset, len(data))
        with self._lock:
            self._pending.extend(self._split(offset, data))
            self.writes += 1
        return len(data)

    def fsync(self):
        """The barrier: apply every buffered sub-write, in order.

        Returns the number of sub-writes made durable.
        """
        with self._lock:
            flushed = len(self._pending)
            for at, chunk in self._pending:
                self._durable[at:at + len(chunk)] = chunk
            self._pending = []
            self.flushes += 1
            return flushed

    @property
    def pending_count(self):
        """Buffered sub-writes not yet covered by a barrier."""
        with self._lock:
            return len(self._pending)

    # -- crash semantics ---------------------------------------------------

    def drop_pending(self):
        """A clean-ish crash: the write buffer dies, nothing tears.

        (Equivalent to a power loss that durably applied none of the
        unflushed stream — one of the states :meth:`power_loss` can
        produce.)  Returns the number of sub-writes dropped.
        """
        with self._lock:
            dropped = len(self._pending)
            self._pending = []
            return dropped

    def power_loss(self, rng):
        """Snapshot the device at a seeded arbitrary prefix of the
        unflushed write stream.

        Per sector, an independent prefix of that sector's pending
        sub-writes is applied (so the stream may land reordered across
        sectors and a multi-sector write may tear), then the buffer is
        discarded.  *rng* is a seeded ``random.Random``; the same seed
        reproduces the same surviving prefix.  Returns
        ``(applied, dropped)`` sub-write counts.
        """
        with self._lock:
            per_sector = {}
            for at, chunk in self._pending:
                per_sector.setdefault(at // self.sector, []).append(
                    (at, chunk))
            keep = set()
            for sector_idx in sorted(per_sector):
                subs = per_sector[sector_idx]
                prefix = rng.randint(0, len(subs))
                for at, chunk in subs[:prefix]:
                    keep.add(id(chunk))
            applied = 0
            for at, chunk in self._pending:
                if id(chunk) in keep:
                    self._durable[at:at + len(chunk)] = chunk
                    applied += 1
            dropped = len(self._pending) - applied
            self._pending = []
            self.power_losses += 1
            return applied, dropped

    # -- introspection (tests, campaigns) ----------------------------------

    def durable_bytes(self, offset=0, size=None):
        """The durable image alone — what a post-crash mount would see."""
        if size is None:
            size = self.size - offset
        self._check_range(offset, size)
        with self._lock:
            return bytes(self._durable[offset:offset + size])

    def __repr__(self):
        return (f"<SimDisk {self.name!r} {self.size}B/{self.sector}B "
                f"pending={len(self._pending)} flushes={self.flushes}>")
