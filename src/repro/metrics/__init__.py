"""Partitioning metrics (trusted-code reduction, changed lines)."""

from repro.metrics.overprivilege import overprivilege_report
from repro.metrics.partition import (app_total_loc, count_lines,
                                     full_report, partition_report)

__all__ = ["app_total_loc", "count_lines", "full_report",
           "overprivilege_report", "partition_report"]
