"""Quantifying §7's static-analysis trade-off over the shipped apps.

The paper warns that statically derived policies are a *superset* of
what correct execution needs, and that the excess "could well include
privileges for sensitive data".  :func:`overprivilege_report` measures
that excess per compartment: how many grants each of the three policy
views (declared / static / traced) contains, how much of the static
view an innocuous traced workload never exercised, and what the lint
pass flagged.
"""

from __future__ import annotations


def _grant_count(view):
    return len(view.mem) + len(view.fds) + len(view.gates)


def overprivilege_report(apps=None, *, with_trace=True):
    """Per-compartment grant accounting over the shipped targets.

    Returns ``{"app/compartment": {...}}`` with grant counts for each
    view, ``static_only_mem`` (tag labels the static pass demands but
    the trace never touched — the §7 over-approximation, 0 on every
    shipped compartment), and the lint finding totals.
    """
    from repro.analysis import APP_NAMES, lint_shipped
    results = lint_shipped(tuple(apps) if apps else APP_NAMES,
                           with_trace=with_trace)
    report = {}
    for result in results:
        static_only = None
        if result.traced is not None:
            static_only = sorted(set(result.static.mem)
                                 - set(result.traced.mem))
        report[f"{result.spec.app}/{result.spec.name}"] = {
            "declared_grants": _grant_count(result.declared),
            "static_grants": _grant_count(result.static),
            "traced_mem": (len(result.traced.mem)
                           if result.traced is not None else None),
            "static_only_mem": static_only,
            "syscalls": len(result.static.syscalls),
            "unresolved": len(result.static.unresolved),
            "errors": len(result.errors),
            "warnings": len(result.warnings),
        }
    return report
