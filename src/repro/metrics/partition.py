"""Partitioning metrics: trusted-code reduction (paper §5.1, §5.2).

The paper quantifies each partitioning two ways:

* how many lines of code execute **in callgates** (privileged, must be
  audited) versus **in sthreads** (unprivileged, exploitable without
  losing secrets) — Apache: ≈16K vs ≈45K (trusted code down by almost
  two thirds); OpenSSH: ≈3.3K vs ≈14K (down over 75%);
* how many lines had to **change** to introduce the partitioning —
  ≈1700 (0.5%) for Apache, 564 (2%) for OpenSSH.

This module computes the analogous numbers for this repository by
classifying source units (functions and modules) by where they execute.
Crypto that runs only behind gates counts as callgate code, exactly as
the paper counts the OpenSSL code reachable from its callgates.  The
absolute numbers are much smaller than C-Apache's, but the *fractions*
are the reproduced quantity.
"""

from __future__ import annotations

import inspect


def count_lines(unit):
    """Physical source lines of a function, class or module
    (including comments and blank lines, as the paper counts)."""
    source = inspect.getsource(unit)
    return len(source.splitlines())


def _loc(units):
    return sum(count_lines(unit) for unit in units)


def httpd_units():
    """Execution-role classification for the Figures-3-5 Apache."""
    from repro.apps.httpd import common, content, mitm
    from repro.crypto import mac, prf, rsa, stream
    from repro.tls import server_core
    callgate_units = [
        mitm.setup_session_key_gate,
        mitm.receive_finished_gate,
        mitm.send_finished_gate,
        mitm.ssl_read_gate,
        mitm.ssl_write_gate,
        mitm._state_from,
        mitm._finished_addr,
        server_core,     # the privileged SSL primitives
        rsa,             # RSA runs only inside setup_session_key
        prf, stream, mac,  # record + key-derivation crypto
        common.SessionState,
    ]
    sthread_units = [
        mitm.HandshakeDriver,
        mitm.HandlerDriver,
        content,         # request parsing: network-facing
    ]
    import repro.tls.handshake as hs
    import repro.tls.records as rec
    import repro.tls.codec as codec
    sthread_units += [hs, rec, codec]   # parsing runs network-facing
    changed_units = [mitm]              # the partitioning itself
    return callgate_units, sthread_units, changed_units


def sshd_units():
    """Execution-role classification for the Figure-6 OpenSSH."""
    from repro.apps.sshd import pam, wedge
    from repro.crypto import dsa, skey
    from repro.sshlib import channel, server, transport, userauth
    callgate_units = [
        wedge.dsa_sign_gate,
        wedge.password_gate,
        wedge.dsa_auth_gate,
        wedge.skey_gate,
        wedge._read_file,
        pam,             # PAM runs inside the password gate
        dsa,             # host-key + user-key operations
        skey,
        userauth,        # credential parsing/checking logic
    ]
    sthread_units = [
        wedge.GateAuthBackend,
        server,          # the session driver: network-facing
        transport,
        channel,
    ]
    changed_units = [wedge]
    return callgate_units, sthread_units, changed_units


def app_total_loc(app):
    """Whole-application size (partitioned variant + shared substrate)."""
    import repro.tls.client as tls_client
    if app == "httpd":
        import repro.apps.httpd.common as common
        import repro.apps.httpd.content as content
        import repro.apps.httpd.mitm as mitm
        import repro.apps.httpd.monolithic as mono
        import repro.apps.httpd.simple as simple
        import repro.tls as _
        from repro.tls import (codec, handshake, records, server_core,
                               session_cache)
        from repro.crypto import mac, prf, rsa, stream
        return _loc([common, content, mitm, mono, simple, codec,
                     handshake, records, server_core, session_cache,
                     tls_client, mac, prf, rsa, stream])
    if app == "sshd":
        import repro.apps.sshd.common as common
        import repro.apps.sshd.monolithic as mono
        import repro.apps.sshd.privsep as privsep
        import repro.apps.sshd.wedge as wedge
        import repro.apps.sshd.pam as pam
        from repro.sshlib import (channel, client, server, transport,
                                  userauth)
        from repro.crypto import dsa, skey
        return _loc([common, mono, privsep, wedge, pam, channel, client,
                     server, transport, userauth, dsa, skey])
    raise ValueError(f"unknown app {app!r}")


def partition_report(app):
    """The paper's two metrics for one application."""
    try:
        units = {"httpd": httpd_units, "sshd": sshd_units}[app]()
    except KeyError:
        raise ValueError(f"unknown app {app!r}") from None
    callgate_units, sthread_units, changed_units = units
    callgate_loc = _loc(callgate_units)
    sthread_loc = _loc(sthread_units)
    changed_loc = _loc(changed_units)
    total = app_total_loc(app)
    return {
        "app": app,
        "callgate_loc": callgate_loc,
        "sthread_loc": sthread_loc,
        "privileged_fraction": callgate_loc / (callgate_loc +
                                               sthread_loc),
        "trusted_code_reduction": sthread_loc / (callgate_loc +
                                                 sthread_loc),
        "changed_loc": changed_loc,
        "total_loc": total,
        "changed_fraction": changed_loc / total,
    }


def full_report():
    return {app: partition_report(app) for app in ("httpd", "sshd")}
