"""Cross-compartment span tracing with model-cycle attribution.

A :class:`Span` is one hop of work inside one compartment; a *trace* is
the tree of spans sharing a ``trace_id``.  The kernel propagates the
span context across every boundary the paper introduces:

* ``kernel.accept`` opens a fresh **root span** on the accepting
  compartment — one inbound connection, one trace;
* ``sthread_create`` / ``fork`` / ``pthread_create`` open a child span
  on the spawned compartment, parented to the spawner's current span;
* callgate invocation (``Kernel._run_gate``) opens a child span on the
  gate compartment, parented to the *caller's* span — so a request that
  crosses master → worker → gate stays one connected tree;
* a supervised restart opens a **fresh** span parented to the crashed
  incarnation's span (fields ``restart=True, generation=N``): the chain
  of incarnations is legible in the trace.

Cycle attribution rides the kernel's deterministic cost model: a span
records the :class:`~repro.core.costs.CostAccount` clock at begin and
end, and reading the clock drains the batched sources registered via
``register_source`` — so the memory bus's TLB tallies land inside the
hop that incurred them.  ``self_cycles`` (total minus direct children)
is computed at export time.  With concurrent compartments the kernel
clock is shared, so attribution is exact for the sequential demo paths
and an upper bound when compartments overlap (see DESIGN.md).
"""

from __future__ import annotations

import itertools
import threading

from repro.observe.events import SPAN_BEGIN, SPAN_END


class Span:
    """One hop: a named unit of work attributed to one compartment."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "comp",
                 "start_cycles", "end_cycles", "status", "fields")

    def __init__(self, trace_id, span_id, parent_id, name, comp,
                 start_cycles, fields):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.comp = comp
        self.start_cycles = start_cycles
        self.end_cycles = None
        self.status = None
        self.fields = fields

    @property
    def done(self):
        return self.end_cycles is not None

    @property
    def cycles(self):
        """Total model cycles spent in this hop (children included)."""
        if self.end_cycles is None:
            return None
        return self.end_cycles - self.start_cycles

    def __repr__(self):
        state = (f"{self.cycles}cy" if self.done else "open")
        return (f"<Span t{self.trace_id}/s{self.span_id} {self.name!r} "
                f"in {self.comp!r} parent={self.parent_id} {state}>")


class Tracer:
    """Allocates span/trace ids and keeps the finished-span ledger."""

    def __init__(self, bus):
        self.bus = bus
        self.spans = []
        self._next_span = itertools.count(1)
        self._next_trace = itertools.count(1)
        self._lock = threading.Lock()

    def begin(self, name, comp=None, parent=None, **fields):
        """Open a span.  ``parent=None`` starts a new trace (a root)."""
        with self._lock:
            span_id = next(self._next_span)
            trace_id = (parent.trace_id if parent is not None
                        else next(self._next_trace))
            span = Span(trace_id, span_id,
                        parent.span_id if parent is not None else None,
                        name, comp, self.bus.costs.cycles(), dict(fields))
            self.spans.append(span)
        if self.bus.enabled:
            self.bus.emit(SPAN_BEGIN, comp=comp, name=name,
                          trace=trace_id, span=span_id,
                          parent=span.parent_id)
        return span

    def end(self, span, status="ok", **fields):
        """Close a span; idempotent (a finished span stays finished)."""
        if span is None or span.end_cycles is not None:
            return
        span.end_cycles = self.bus.costs.cycles()
        span.status = status
        span.fields.update(fields)
        if self.bus.enabled:
            self.bus.emit(SPAN_END, comp=span.comp, name=span.name,
                          trace=span.trace_id, span=span.span_id,
                          cycles=span.cycles, status=status)

    def finish_open(self, status="open"):
        """Close every still-open span (export-time hygiene)."""
        for span in list(self.spans):
            if not span.done:
                self.end(span, status=status)

    # -- queries -----------------------------------------------------------

    def trace(self, trace_id):
        """Spans of one trace, in begin order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def traces(self):
        """Trace ids in first-seen order."""
        seen = []
        for span in self.spans:
            if span.trace_id not in seen:
                seen.append(span.trace_id)
        return seen

    def children(self, span):
        return [s for s in self.spans if s.parent_id == span.span_id]

    def self_cycles(self, span):
        """*span*'s cycles minus those of its direct children."""
        if span.cycles is None:
            return None
        nested = sum(child.cycles or 0 for child in self.children(span))
        return max(0, span.cycles - nested)

    def compartments(self, trace_id):
        """Distinct compartments a trace touched, in first-hop order."""
        seen = []
        for span in self.trace(trace_id):
            if span.comp is not None and span.comp not in seen:
                seen.append(span.comp)
        return seen


# ---------------------------------------------------------------------------
# cross-kernel stitching
# ---------------------------------------------------------------------------

def _span_cids(span):
    """Connection ids recorded on one span.

    ``kernel.accept`` stamps the connection id as ``cid`` on the root
    request span; ``kernel.connect`` appends each outbound hop's id to
    the current span's ``cids`` list.  Both ends of a connection share
    the id (:class:`~repro.net.network.Network` allocates it), so it is
    the join key across kernels.
    """
    cids = set()
    cid = span.fields.get("cid")
    if cid is not None:
        cids.add(cid)
    cids.update(span.fields.get("cids", ()))
    return cids


def stitch(tracers):
    """Join traces from different kernels' tracers into end-to-end ones.

    Each kernel traces its own hops; a request that crosses the wire
    appears as one trace per kernel.  Traces sharing a connection id are
    the same logical request, so this unions them (transitively — an
    lb-fronted request stitches client-facing and backend-facing hops
    into one group).

    Returns one dict per stitched group, ordered by earliest span::

        {"traces": [(tracer_index, trace_id), ...],
         "cids": sorted connection ids,
         "spans": spans of every member trace, in begin order,
         "compartments": distinct compartments, first-hop order}
    """
    nodes = []          # (tracer_index, trace_id)
    node_cids = {}      # node -> set of cids
    by_cid = {}         # cid -> first node seen with it
    parent = {}

    def find(node):
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for t_idx, tracer in enumerate(tracers):
        for trace_id in tracer.traces():
            node = (t_idx, trace_id)
            nodes.append(node)
            parent[node] = node
            cids = set()
            for span in tracer.trace(trace_id):
                cids |= _span_cids(span)
            node_cids[node] = cids
            for cid in cids:
                if cid in by_cid:
                    union(by_cid[cid], node)
                else:
                    by_cid[cid] = node

    groups = {}
    for node in nodes:
        groups.setdefault(find(node), []).append(node)

    out = []
    for members in groups.values():
        spans = []
        for t_idx, trace_id in members:
            spans.extend(tracers[t_idx].trace(trace_id))
        spans.sort(key=lambda s: (s.start_cycles, s.span_id))
        comps = []
        for span in spans:
            if span.comp is not None and span.comp not in comps:
                comps.append(span.comp)
        cids = set()
        for node in members:
            cids |= node_cids[node]
        out.append({
            "traces": members,
            "cids": sorted(cids),
            "spans": spans,
            "compartments": comps,
        })
    out.sort(key=lambda g: (g["spans"][0].start_cycles
                            if g["spans"] else 0))
    return out
