"""The kernel event bus: one dispatch point, zero disabled overhead.

Every kernel holds exactly one :class:`EventBus` (``kernel.observe``),
created unconditionally at boot so chokepoints never need a ``None``
test — they follow the same single-attribute-test discipline as fault
injection::

    obs = self.observe
    if obs.enabled:
        obs.emit(ev.SYSCALL_ENTER, comp=st.name, name="open")

``enabled`` is simply "does any sink exist", so with no observer
attached the *entire* per-event cost is that one attribute test: no
Event is constructed, no kwargs dict is built, no model cycles are
charged.  The ``bench_observe`` artifact in ``benchmarks/bench_json.py``
holds this to <2% of the Figure 7 primitives in CI.

When enabled, each emission charges the ``observe_emit`` cost weight
(the model's stand-in for a tracepoint firing), stamps the event with a
sequence number and the account's model-cycle clock — observing the
clock drains batched sources registered via
:meth:`~repro.core.costs.CostAccount.register_source`, so TLB work is
settled up to the event — and fans out to every subscribed sink.

Storm control: the high-volume kinds (``tlb.hit``/``tlb.miss``, one per
load/store) are delivered only to sinks that subscribed to them by
name, and the precomputed :attr:`tlb_active` flag lets the memory bus
skip building them entirely when nobody asked.
"""

from __future__ import annotations

import itertools

from repro.observe.events import HIGH_VOLUME, TAXONOMY, Event


class EventBus:
    """Fan-out point between the kernel's chokepoints and the sinks.

    A *sink* is any object with an ``accept(event)`` method.  Sinks
    subscribe via :meth:`add_sink`, either to the default set (every
    kind except the high-volume ones) or to an explicit frozen set of
    kinds.  ``tracer`` is the span-tracing attachment point (see
    :mod:`repro.observe.trace`); chokepoints that manage spans test it
    the same single-attribute way.
    """

    def __init__(self, costs, *, kernel_name="wedge"):
        self.costs = costs
        self.kernel_name = kernel_name
        #: True iff at least one sink is attached.  THE hot-path gate:
        #: chokepoints must test this before building any event.
        self.enabled = False
        #: True iff some sink subscribed to a high-volume TLB kind; the
        #: memory bus fast path tests this instead of ``enabled``.
        self.tlb_active = False
        #: active Tracer, or None (set by Observer.attach)
        self.tracer = None
        self._sinks = []            # [(sink, kinds-or-None), ...]
        self._seq = itertools.count()

    # -- sink management ---------------------------------------------------

    def add_sink(self, sink, kinds=None):
        """Attach *sink*; deliver the default kinds or exactly *kinds*.

        ``kinds=None`` means every kind in the taxonomy except
        :data:`~repro.observe.events.HIGH_VOLUME`; pass an iterable of
        kind names (which may include the high-volume ones) to narrow
        or widen that.
        """
        if kinds is not None:
            kinds = frozenset(kinds)
            unknown = kinds - set(TAXONOMY)
            if unknown:
                raise KeyError(f"unknown event kinds: {sorted(unknown)}")
        self._sinks.append((sink, kinds))
        self._recompute()
        return sink

    def remove_sink(self, sink):
        self._sinks = [(s, k) for s, k in self._sinks if s is not sink]
        self._recompute()

    def _recompute(self):
        self.enabled = bool(self._sinks)
        self.tlb_active = any(kinds is not None and kinds & HIGH_VOLUME
                              for _, kinds in self._sinks)

    @property
    def sinks(self):
        return [sink for sink, _ in self._sinks]

    # -- emission ----------------------------------------------------------

    def emit(self, kind, /, comp=None, **fields):
        """Build one event and deliver it to the subscribed sinks.

        Callers are responsible for the ``enabled`` test — this method
        assumes observation is on and always pays the emit cost.
        (*kind* is positional-only so a payload field may itself be
        called ``kind`` — ``fault.fired`` carries one.)
        """
        if kind not in TAXONOMY:
            raise KeyError(f"unknown event kind: {kind!r}")
        self.costs.charge("observe_emit")
        event = Event(next(self._seq), self.costs.cycles(), kind, comp,
                      fields)
        for sink, kinds in self._sinks:
            if kinds is None:
                if kind in HIGH_VOLUME:
                    continue
            elif kind not in kinds:
                continue
            sink.accept(event)
        return event

    def __repr__(self):
        return (f"<EventBus {self.kernel_name!r} sinks={len(self._sinks)} "
                f"enabled={self.enabled}>")
