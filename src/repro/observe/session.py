"""Observed demo sessions: drive one app under a fully-armed Observer.

The back end of ``python -m repro observe``: builds one of the shipped
applications (reusing the chaos harness's per-app drivers, so all four
demo paths — both Apache partitionings, OpenSSH and POP3 — are
covered), attaches an :class:`~repro.observe.Observer` to the server
kernel, serves the requested number of clean client sessions, and
returns the observer with its spans, counters and flight-recorder tape.

Kept out of the package ``__init__`` on purpose: it imports the
application stack, which the kernel-side emit points must not.
"""

from __future__ import annotations

from repro.faults.chaos import CHAOS_TARGETS
from repro.observe.observer import Observer

#: Short names accepted by the CLI, mapped onto the chaos drivers.
APP_ALIASES = {
    "httpd": "httpd-mitm",       # the fine-grained (≥3 compartment) split
    "sshd": "sshd-wedge",
}

OBSERVE_APP_NAMES = tuple(sorted(set(CHAOS_TARGETS) | set(APP_ALIASES)))


def resolve_app(name):
    """Map a CLI app name to its chaos-driver key, or raise KeyError."""
    name = APP_ALIASES.get(name, name)
    if name not in CHAOS_TARGETS:
        raise KeyError(name)
    return name


def observed_session(app, *, requests=1, flight_capacity=1024,
                     tlb_events=False):
    """Serve *requests* clean sessions of *app* under observation.

    Returns the detached :class:`Observer` holding everything that was
    recorded.  The server is built unsupervised (no restart policy) and
    torn down before returning.
    """
    target = CHAOS_TARGETS[resolve_app(app)]
    server = target.make(None)
    server.start()
    observer = Observer(server.kernel, flight_capacity=flight_capacity,
                        tlb_events=tlb_events)
    try:
        with observer:
            for index in range(requests):
                target.session(server, index + 1, strict=True)
    finally:
        server.stop()
    return observer
