"""``repro.observe`` — the kernel observability subsystem.

Three layers over one event bus:

* :mod:`~repro.observe.events` / :mod:`~repro.observe.bus` — the typed
  kernel event taxonomy and the zero-overhead-when-disabled dispatch
  point every kernel carries as ``kernel.observe``;
* :mod:`~repro.observe.trace` — spans that propagate across callgate
  invocations, sthread/fork/pthread spawns and supervised restarts,
  with model-cycle attribution per hop;
* sinks — the :mod:`~repro.observe.record` flight recorder (bounded
  ring + drop counter + fault dumps), the :mod:`~repro.observe.counters`
  registry, and the :mod:`~repro.observe.export` Chrome
  trace-event/Perfetto exporter.

:class:`Observer` bundles the standard attachment; the CLI front end is
``python -m repro observe`` (:mod:`repro.observe.session` — imported
lazily there, as it pulls in the application stack).

This package (minus ``session``) imports nothing from ``repro.core``,
so the kernel's chokepoints can import it without cycles.
"""

from repro.observe import events
from repro.observe.bus import EventBus
from repro.observe.counters import CounterRegistry
from repro.observe.events import TAXONOMY, Event, format_event, redact
from repro.observe.export import (chrome_trace, validate_chrome_trace,
                                  validate_file, write_trace)
from repro.observe.observer import Observer
from repro.observe.record import FlightRecorder
from repro.observe.trace import Span, Tracer, stitch

__all__ = [
    "events", "EventBus", "CounterRegistry", "TAXONOMY", "Event",
    "format_event", "redact", "chrome_trace", "validate_chrome_trace",
    "validate_file", "write_trace", "Observer", "FlightRecorder",
    "Span", "Tracer", "stitch",
]
