"""Chrome trace-event / Perfetto JSON export and schema validation.

Spans become complete (``"ph": "X"``) duration events and notable bus
events become instants (``"ph": "i"``), in the JSON object format the
Chrome trace-event spec defines: ``{"traceEvents": [...]}`` with
integer ``pid``/``tid`` plus ``process_name``/``thread_name`` metadata
(``"ph": "M"``) events.  Load the file at ``chrome://tracing`` or
https://ui.perfetto.dev (EXPERIMENTS.md has the recipe).

Timebase: one **model cycle is exported as one microsecond** — the
simulation has no meaningful wall clock, and the deterministic cycle
clock is exactly what the trace should show.  ``dur`` of a span is its
total cycles; ``args.self_cycles`` carries the per-hop attribution
(total minus direct children).

:func:`validate_chrome_trace` is a self-contained structural check used
by the CI ``observe-smoke`` job and ``repro observe --validate``; it
returns a list of problems (empty = valid).
"""

from __future__ import annotations

import json

#: Event kinds exported as instant markers on their compartment's row.
INSTANT_KINDS = ("mem.violation", "fault.fired", "supervise.restart",
                 "compartment.down", "cgate.degraded", "tlb.shootdown",
                 "cow.break", "cow.snapshot", "cow.restore",
                 "net.shed", "stream.backpressure", "deadline.exceeded",
                 "breaker.open", "breaker.half_open", "breaker.close")

#: Phase types the validator accepts (the subset of the trace-event
#: spec this exporter and common tooling produce).
KNOWN_PHASES = frozenset("XBEiIbencstfPNODMvR")

_EXPORT_PID = 1


def chrome_trace(spans, events=(), *, kernel_name="wedge"):
    """Build the trace-event JSON object for *spans* (+ instant *events*).

    Open spans are skipped (callers normally run
    :meth:`~repro.observe.trace.Tracer.finish_open` first).  Rows
    (``tid``) are compartments in first-appearance order.
    """
    tids = {}

    def tid_for(comp):
        comp = comp or "-"
        if comp not in tids:
            tids[comp] = len(tids) + 1
        return tids[comp]

    by_id = {span.span_id: span for span in spans}
    child_cycles = {}
    for span in spans:
        if span.parent_id is not None and span.cycles is not None:
            child_cycles[span.parent_id] = (
                child_cycles.get(span.parent_id, 0) + span.cycles)

    trace_events = []
    for span in spans:
        if not span.done:
            continue
        args = {
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "cycles": span.cycles,
            "self_cycles": max(0, span.cycles
                               - child_cycles.get(span.span_id, 0)),
            "status": span.status,
        }
        args.update({k: _jsonable(v) for k, v in span.fields.items()})
        trace_events.append({
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "ts": span.start_cycles,
            "dur": span.cycles,
            "pid": _EXPORT_PID,
            "tid": tid_for(span.comp),
            "args": args,
        })
    for event in events:
        if event.kind not in INSTANT_KINDS:
            continue
        trace_events.append({
            "name": event.kind,
            "cat": "event",
            "ph": "i",
            "s": "t",
            "ts": event.cycles,
            "pid": _EXPORT_PID,
            "tid": tid_for(event.comp),
            "args": {k: _jsonable(v) for k, v in event.fields.items()},
        })

    meta = [{
        "name": "process_name", "ph": "M", "pid": _EXPORT_PID, "tid": 0,
        "args": {"name": f"kernel:{kernel_name}"},
    }]
    for comp, tid in tids.items():
        meta.append({
            "name": "thread_name", "ph": "M", "pid": _EXPORT_PID,
            "tid": tid, "args": {"name": comp},
        })
    # root spans first within a tree renders best; stable ts order is
    # enough for both Chrome and Perfetto
    trace_events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": meta + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "kernel": kernel_name,
            "timebase": "1 model cycle = 1 us",
            "spans": len(by_id),
        },
    }


def _jsonable(value):
    if isinstance(value, (bytes, bytearray, memoryview)):
        return f"<{len(value)} bytes>"
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def write_trace(path, trace):
    """Serialise a trace object to *path*; returns the path."""
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
    return path


def validate_chrome_trace(obj):
    """Structural check against the Chrome trace-event JSON format.

    Returns a list of problem strings; an empty list means the object
    is a loadable trace.  Checks the object form (``traceEvents`` list),
    per-event required keys and types, known phase codes, non-negative
    durations, and that every referenced ``tid`` has a ``thread_name``
    metadata row (Perfetto renders nameless rows as bare numbers).
    """
    problems = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    named_tids = set()
    used_tids = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or ph not in KNOWN_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if ph == "M":
            if event.get("name") == "thread_name":
                named_tids.add(event.get("tid"))
            continue
        used_tids.add(event.get("tid"))
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: missing numeric 'ts'")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs dur >= 0, "
                                f"got {dur!r}")
        if ph == "i" and event.get("s") not in (None, "t", "p", "g"):
            problems.append(f"{where}: bad instant scope "
                            f"{event.get('s')!r}")
    for tid in sorted(used_tids - named_tids):
        problems.append(f"tid {tid} has no thread_name metadata")
    return problems


def validate_file(path):
    """Validate a trace JSON file; returns the problem list."""
    try:
        with open(path) as fh:
            obj = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]
    return validate_chrome_trace(obj)
