"""Typed kernel events: the observability subsystem's vocabulary.

Every chokepoint the kernel already owns (the syscall gate, callgate
transitions, the memory bus, the TLB choke point, the fault plan, the
supervisors, the network syscalls) emits exactly one kind of
:class:`Event` from :data:`TAXONOMY`.  The taxonomy is deliberately
closed: an unknown kind is a programming error, caught eagerly by the
bus, so sinks and exporters can rely on the field shapes documented
here.

Events are cheap value objects (``__slots__``, no methods beyond
formatting) because a single request can produce hundreds of them; the
no-op path never constructs one at all (the chokepoints test
``bus.enabled`` first — see :mod:`repro.observe.bus`).

This module imports nothing from :mod:`repro.core`, so the kernel's
emit sites (and the fault plan, supervisor, and memory bus) can import
the kind constants without a cycle.
"""

from __future__ import annotations

# -- event kinds (the closed taxonomy) ---------------------------------------

SYSCALL_ENTER = "syscall.enter"
SYSCALL_EXIT = "syscall.exit"
CGATE_ENTER = "cgate.enter"
CGATE_EXIT = "cgate.exit"
CGATE_DEGRADED = "cgate.degraded"
MEM_VIOLATION = "mem.violation"
TLB_HIT = "tlb.hit"
TLB_MISS = "tlb.miss"
TLB_SHOOTDOWN = "tlb.shootdown"
COW_SNAPSHOT = "cow.snapshot"
COW_BREAK = "cow.break"
COW_RESTORE = "cow.restore"
FAULT_FIRED = "fault.fired"
SUPERVISE_RESTART = "supervise.restart"
COMPARTMENT_DOWN = "compartment.down"
STHREAD_SPAWN = "sthread.spawn"
STHREAD_EXIT = "sthread.exit"
NET_LISTEN = "net.listen"
NET_ACCEPT = "net.accept"
NET_CONNECT = "net.connect"
NET_SEND = "net.send"
NET_RECV = "net.recv"
NET_SHED = "net.shed"
STREAM_BACKPRESSURE = "stream.backpressure"
DEADLINE_EXCEEDED = "deadline.exceeded"
BREAKER_OPEN = "breaker.open"
BREAKER_HALF_OPEN = "breaker.half_open"
BREAKER_CLOSE = "breaker.close"
SPAN_BEGIN = "span.begin"
SPAN_END = "span.end"
ANALYSIS_CERTIFIED = "analysis.certified"
ANALYSIS_REVOKED = "analysis.revoked"
CLUSTER_EJECTED = "cluster.ejected"
CLUSTER_RECOVERED = "cluster.recovered"
CLUSTER_FAILOVER = "cluster.failover"
DISK_WRITE = "disk.write"
DISK_FSYNC = "disk.fsync"
DISK_POWER_LOSS = "disk.power_loss"
WAL_CHECKPOINT = "wal.checkpoint"
WAL_RECOVER = "wal.recover"

#: kind -> (emitting chokepoint, meaning).  DESIGN.md §4d renders this.
TAXONOMY = {
    SYSCALL_ENTER: ("Kernel syscall gate", "a syscall trapped in"),
    SYSCALL_EXIT: ("Kernel syscall gate", "the syscall returned/raised"),
    CGATE_ENTER: ("Kernel._run_gate", "control entered a callgate"),
    CGATE_EXIT: ("Kernel._run_gate", "the callgate returned or faulted"),
    CGATE_DEGRADED: ("Kernel._invoke_supervised",
                     "a supervised gate exhausted its restart budget"),
    MEM_VIOLATION: ("MemoryBus._violation",
                    "a load/store hit a protection fault"),
    TLB_HIT: ("MemoryBus fast path", "translation served from the TLB"),
    TLB_MISS: ("MemoryBus._translate", "full page-table walk on miss"),
    TLB_SHOOTDOWN: ("PageTable._invalidate",
                    "cached translations dropped at a rights narrowing"),
    COW_SNAPSHOT: ("Kernel.start_main",
                   "the pre-main image was sealed and snapshotted"),
    COW_BREAK: ("MemoryBus.write", "first write copied a COW frame"),
    COW_RESTORE: ("SupervisedSthread._spawn_incarnation",
                  "a restart remapped the pristine snapshot"),
    FAULT_FIRED: ("FaultPlan.fire", "an injected fault fired"),
    SUPERVISE_RESTART: ("supervisor loops",
                        "a crashed compartment was restarted"),
    COMPARTMENT_DOWN: ("SupervisedSthread._supervise",
                       "a supervised sthread degraded terminally"),
    STHREAD_SPAWN: ("Kernel._build_sthread / fork / pthread_create",
                    "a compartment was created"),
    STHREAD_EXIT: ("Sthread.run_body", "a compartment finished"),
    NET_LISTEN: ("Kernel.listen", "a listener was bound"),
    NET_ACCEPT: ("Kernel.accept", "an inbound connection was accepted"),
    NET_CONNECT: ("Kernel.connect / Network.connect",
                  "an outbound connection was made"),
    NET_SEND: ("Kernel.send", "bytes left through a socket fd"),
    NET_RECV: ("Kernel.recv", "bytes arrived through a socket fd"),
    NET_SHED: ("Network.connect",
               "admission control shed a connection (backlog full)"),
    STREAM_BACKPRESSURE: ("ByteStream.send",
                          "a sender blocked on the high-water mark"),
    DEADLINE_EXCEEDED: ("deadline-aware chokepoints",
                        "a request ran out of end-to-end budget"),
    BREAKER_OPEN: ("Kernel._invoke_supervised",
                   "a degraded gate's circuit breaker opened"),
    BREAKER_HALF_OPEN: ("Kernel._invoke_supervised",
                        "the cooldown elapsed; one probe admitted"),
    BREAKER_CLOSE: ("Kernel._invoke_supervised",
                    "the probe succeeded; the gate recovered"),
    SPAN_BEGIN: ("Tracer.begin", "a trace span opened"),
    SPAN_END: ("Tracer.end", "a trace span closed"),
    ANALYSIS_CERTIFIED: ("Kernel.enter_verified",
                         "a policy certificate was bound; checks elided"),
    ANALYSIS_REVOKED: ("PageTable._invalidate",
                       "a rights narrowing revoked the certificate"),
    CLUSTER_EJECTED: ("lb health gate",
                      "a replica's breaker opened; routing excludes it"),
    CLUSTER_RECOVERED: ("lb health gate",
                        "a half-open probe succeeded; replica re-admitted"),
    CLUSTER_FAILOVER: ("lb router / forwarder",
                       "a request was re-routed off its primary replica"),
    DISK_WRITE: ("Kernel.disk_write",
                 "sectors buffered on a simulated disk (not yet durable)"),
    DISK_FSYNC: ("Kernel.disk_fsync",
                 "the barrier: buffered sectors became durable"),
    DISK_POWER_LOSS: ("Kernel.kill(power_loss=True)",
                      "a crash applied a seeded prefix of unflushed writes"),
    WAL_CHECKPOINT: ("kv WriteAheadLog.checkpoint",
                     "a snapshot checkpoint committed; the log truncated"),
    WAL_RECOVER: ("kv WriteAheadLog.recover",
                  "a fresh incarnation replayed the log into its store"),
}

#: Storm-level kinds: delivered only to sinks that *explicitly* ask for
#: them, so an attached flight recorder does not turn every load/store
#: into an event (see EventBus.tlb_active).
HIGH_VOLUME = frozenset({TLB_HIT, TLB_MISS})


class Event:
    """One observed kernel event.

    ``seq`` is the bus's monotonically increasing sequence number,
    ``cycles`` the kernel's model-cycle clock at emission (drained from
    the :class:`~repro.core.costs.CostAccount`, so batched TLB work is
    settled up to this point), ``comp`` the *name* of the compartment it
    happened in (or ``None`` for kernel-global events), and ``fields``
    the kind-specific payload.
    """

    __slots__ = ("seq", "cycles", "kind", "comp", "fields")

    def __init__(self, seq, cycles, kind, comp, fields):
        self.seq = seq
        self.cycles = cycles
        self.kind = kind
        self.comp = comp
        self.fields = fields

    def __repr__(self):
        return (f"<Event #{self.seq} {self.kind} in {self.comp!r} "
                f"@{self.cycles}cy>")


def redact(value, *, max_str=48):
    """Payload hygiene for logs and flight-recorder dumps.

    Byte payloads (wire records, key material, file contents) are
    replaced by their length; long strings are truncated.  Containers
    are redacted shallowly.
    """
    if isinstance(value, (bytes, bytearray, memoryview)):
        return f"<{len(value)} bytes>"
    if isinstance(value, str) and len(value) > max_str:
        return value[:max_str] + "..."
    if isinstance(value, (list, tuple)):
        return type(value)(redact(v, max_str=max_str) for v in value)
    if isinstance(value, dict):
        return {k: redact(v, max_str=max_str) for k, v in value.items()}
    return value


def format_event(event):
    """One redacted, human-readable line per event."""
    fields = " ".join(f"{k}={redact(v)!r}"
                      for k, v in sorted(event.fields.items()))
    comp = event.comp or "-"
    return (f"#{event.seq:<6d} {event.cycles:>12,d}cy  "
            f"{event.kind:<18s} {comp:<20s} {fields}")
