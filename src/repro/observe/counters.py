"""Per-compartment counters and latency histograms.

The aggregation sink behind ``python -m repro observe``'s top-style
summary: event counts keyed ``(compartment, kind)`` and power-of-two
model-cycle histograms of span durations per compartment.  Unlike the
flight recorder it keeps no event objects, so it can stay attached
indefinitely at O(compartments × kinds) memory.
"""

from __future__ import annotations

import threading

from repro.observe.events import SPAN_END


class CounterRegistry:
    """Counting sink: who did what, how often, and how long it took."""

    def __init__(self):
        self.counts = {}        # (comp, kind) -> occurrences
        self.span_cycles = {}   # comp -> total model cycles in spans
        self.histograms = {}    # comp -> {log2 bucket -> spans}
        self._lock = threading.Lock()

    def accept(self, event):
        comp = event.comp or "-"
        with self._lock:
            key = (comp, event.kind)
            self.counts[key] = self.counts.get(key, 0) + 1
            if event.kind == SPAN_END:
                cycles = event.fields.get("cycles") or 0
                self.span_cycles[comp] = (self.span_cycles.get(comp, 0)
                                          + cycles)
                bucket = int(cycles).bit_length()
                hist = self.histograms.setdefault(comp, {})
                hist[bucket] = hist.get(bucket, 0) + 1

    # -- queries -----------------------------------------------------------

    def compartments(self):
        with self._lock:
            return sorted({comp for comp, _ in self.counts})

    def by_kind(self, comp):
        """``{kind: count}`` for one compartment."""
        with self._lock:
            return {kind: n for (c, kind), n in self.counts.items()
                    if c == comp}

    def total(self, kind):
        with self._lock:
            return sum(n for (_, k), n in self.counts.items()
                       if k == kind)

    def histogram(self, comp):
        """``{log2-bucket: spans}``; bucket *b* covers
        ``[2**(b-1), 2**b)`` model cycles."""
        with self._lock:
            return dict(self.histograms.get(comp, {}))

    def __repr__(self):
        return (f"<CounterRegistry comps={len(self.compartments())} "
                f"events={sum(self.counts.values())}>")
