"""The flight recorder: a bounded ring of the most recent events.

Like an aircraft flight recorder, it keeps only the last *capacity*
events and counts what it had to throw away — so it can run attached
for an entire chaos campaign at fixed memory cost, and when a
compartment dies the moments *before* the death are still on the tape.

Trigger kinds (``dump_on``) snapshot the tail at the instant the
trigger event arrives: ``repro chaos`` arms it with
``compartment.down`` and ``cgate.degraded`` so every terminal
degradation self-documents its last 50 events (payload bytes redacted
— see :func:`~repro.observe.events.redact`).
"""

from __future__ import annotations

import threading
from collections import deque

from repro.observe.events import format_event

#: Events shown per captured dump (the satellite-task contract).
DUMP_EVENTS = 50

#: Keep at most this many trigger snapshots; under a long chaos storm
#: the *latest* failures are the diagnostic ones.
MAX_DUMPS = 4


class FlightRecorder:
    """Ring-buffer sink with a drop counter and fault-triggered dumps."""

    def __init__(self, capacity=256, *, dump_on=()):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self.accepted = 0
        self.dump_on = frozenset(dump_on)
        #: [(trigger_event, [tail events]), ...] — newest last
        self.dumps = []
        self._ring = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def accept(self, event):
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(event)
            self.accepted += 1
            if event.kind in self.dump_on:
                if len(self.dumps) >= MAX_DUMPS:
                    self.dumps.pop(0)
                self.dumps.append((event,
                                   list(self._ring)[-DUMP_EVENTS:]))

    def last(self, n=None):
        """The newest *n* events (all buffered events if ``n=None``)."""
        with self._lock:
            tail = list(self._ring)
        return tail if n is None else tail[-n:]

    def __len__(self):
        with self._lock:
            return len(self._ring)

    def format_dump(self, dump=None, *, title=None):
        """Render one captured dump (default: the newest) redacted.

        Returns ``""`` when nothing was captured.
        """
        if dump is None:
            if not self.dumps:
                return ""
            dump = self.dumps[-1]
        trigger, tail = dump
        head = title or (f"flight recorder: last {len(tail)} events "
                         f"before {trigger.kind} "
                         f"in {trigger.comp or '-'}")
        lines = [head]
        lines += ["  " + format_event(event) for event in tail]
        return "\n".join(lines)

    def __repr__(self):
        return (f"<FlightRecorder {len(self)}/{self.capacity} "
                f"dropped={self.dropped} dumps={len(self.dumps)}>")
