"""The one-call attachment facade: ``with Observer(kernel): ...``.

Wires the standard sink set onto a kernel's event bus — a
:class:`~repro.observe.record.FlightRecorder` (fault dumps armed), a
:class:`~repro.observe.counters.CounterRegistry`, and a
:class:`~repro.observe.trace.Tracer` — plus the network-side
``net.connect`` hook when the kernel has a network attached, and
detaches all of it symmetrically.  Detaching restores the bus to its
free disabled state, so observation is strictly a scoped decision.
"""

from __future__ import annotations

from repro.observe import events as ev
from repro.observe.counters import CounterRegistry
from repro.observe.export import chrome_trace, write_trace
from repro.observe.record import FlightRecorder
from repro.observe.trace import Tracer

#: Terminal-degradation kinds that trigger a flight-recorder dump.
FAULT_DUMP_KINDS = (ev.COMPARTMENT_DOWN, ev.CGATE_DEGRADED)


class Observer:
    """Scoped observation of one kernel: recorder + counters + spans."""

    def __init__(self, kernel, *, flight_capacity=1024, tlb_events=False):
        self.kernel = kernel
        self.bus = kernel.observe
        self.tracer = Tracer(self.bus)
        self.recorder = FlightRecorder(capacity=flight_capacity,
                                       dump_on=FAULT_DUMP_KINDS)
        self.counters = CounterRegistry()
        #: with tlb_events=True the recorder also receives the
        #: high-volume tlb.hit/tlb.miss stream (event-storm mode)
        self._recorder_kinds = (frozenset(ev.TAXONOMY) if tlb_events
                                else None)
        self._attached = False

    # -- lifecycle ---------------------------------------------------------

    def attach(self):
        if self._attached:
            return self
        self.bus.add_sink(self.recorder, kinds=self._recorder_kinds)
        self.bus.add_sink(self.counters)
        self.bus.tracer = self.tracer
        net = self.kernel.net
        if net is not None:
            net.observer = self.bus
        self._attached = True
        return self

    def detach(self):
        if not self._attached:
            return
        self.bus.remove_sink(self.recorder)
        self.bus.remove_sink(self.counters)
        if self.bus.tracer is self.tracer:
            self.bus.tracer = None
        net = self.kernel.net
        if net is not None and getattr(net, "observer", None) is self.bus:
            net.observer = None
        self._attached = False

    def __enter__(self):
        return self.attach()

    def __exit__(self, *exc):
        self.detach()
        return False

    # -- results -----------------------------------------------------------

    def chrome_trace(self):
        """The Chrome trace-event object for everything observed."""
        self.tracer.finish_open()
        return chrome_trace(self.tracer.spans, self.recorder.last(),
                            kernel_name=self.bus.kernel_name)

    def export(self, path):
        """Write the trace JSON to *path*; returns the path."""
        return write_trace(path, self.chrome_trace())

    def summary(self):
        """Top-style text summary: per-compartment events and cycles."""
        self.tracer.finish_open(status="open")
        spans_by_comp = {}
        for span in self.tracer.spans:
            spans_by_comp.setdefault(span.comp or "-", []).append(span)
        lines = [
            f"observe {self.bus.kernel_name}: "
            f"{self.recorder.accepted} events "
            f"({self.recorder.dropped} dropped from the ring), "
            f"{len(self.tracer.spans)} spans, "
            f"{len(self.tracer.traces())} traces",
            f"  {'compartment':24s} {'spans':>5s} {'cycles':>12s} "
            f"{'self':>12s}  top events",
        ]
        order = sorted(
            spans_by_comp,
            key=lambda comp: -sum(s.cycles or 0
                                  for s in spans_by_comp[comp]))
        for comp in order:
            spans = spans_by_comp[comp]
            total = sum(s.cycles or 0 for s in spans)
            self_total = sum(self.tracer.self_cycles(s) or 0
                             for s in spans)
            kinds = self.counters.by_kind(comp)
            top = " ".join(
                f"{kind}={n}" for kind, n in sorted(
                    kinds.items(), key=lambda kv: -kv[1])[:3])
            lines.append(f"  {comp:24s} {len(spans):5d} {total:12,d} "
                         f"{self_total:12,d}  {top}")
        for trace_id in self.tracer.traces():
            comps = self.tracer.compartments(trace_id)
            lines.append(f"  trace {trace_id}: "
                         f"{len(self.tracer.trace(trace_id))} spans "
                         f"across {len(comps)} compartments "
                         f"({' -> '.join(comps)})")
        return "\n".join(lines)
