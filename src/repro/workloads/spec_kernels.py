"""SPEC-like workload kernels (Figure 9's benchmark applications).

Each function reproduces the *computational character* of one of the
C-language SPECint 2006 benchmarks the paper runs under cb-log — small,
self-contained, and issuing its loads/stores through the simulated
memory bus.  What matters for Figure 9 is the spread of
memory-access-density across workloads: tight load/store loops
(h264ref, bzip2) suffer the largest instrumentation multiple; kernels
with heavier compute between accesses (quantum, sjeng) a smaller one;
the real network applications (ssh, apache — see
:mod:`repro.workloads.apps`) the smallest.

Every kernel returns a checksum so tests can pin functional
correctness independent of instrumentation mode.
"""

from __future__ import annotations

from repro.workloads import memlib
from repro.workloads.memlib import (Xorshift, alloc_words, load,
                                    load_byte, store, store_byte)

#: scale -> rough work multiplier used by every kernel
SCALES = {"quick": 1, "bench": 4}


def _scale(scale):
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}") from None


def mcf(kernel, scale="quick"):
    """429.mcf: min-cost-flow ≈ repeated Bellman-Ford relaxation.

    Pointer-chasing over an edge array — memory-bound with a compare
    per access, like the real benchmark's network simplex.
    """
    mult = _scale(scale)
    nodes = 24 * mult
    edges_n = nodes * 4
    rng = Xorshift(0x6D6366)
    edges = alloc_words(kernel, edges_n * 3)
    dist = alloc_words(kernel, nodes)
    for i in range(edges_n):
        store(kernel, edges, 3 * i, rng.below(nodes))
        store(kernel, edges, 3 * i + 1, rng.below(nodes))
        store(kernel, edges, 3 * i + 2, 1 + rng.below(100))
    infinity = 1 << 30
    for i in range(1, nodes):
        store(kernel, dist, i, infinity)
    for _ in range(nodes - 1):
        changed = False
        for i in range(edges_n):
            u = load(kernel, edges, 3 * i)
            v = load(kernel, edges, 3 * i + 1)
            w = load(kernel, edges, 3 * i + 2)
            du = load(kernel, dist, u)
            if du == infinity:
                continue
            alt = du + w
            if alt < load(kernel, dist, v):
                store(kernel, dist, v, alt)
                changed = True
        if not changed:
            break
    return sum(load(kernel, dist, i) % 1000003 for i in range(nodes))


def bzip2(kernel, scale="quick"):
    """401.bzip2: move-to-front + run-length coding over a block.

    Byte-at-a-time loads and stores with trivial compute between them —
    the high-ratio end of Figure 9.
    """
    mult = _scale(scale)
    size = 768 * mult
    rng = Xorshift(0x627A32)
    src = kernel.alloc_buf(size).addr
    dst = kernel.alloc_buf(2 * size + 16).addr
    for i in range(size):
        store_byte(kernel, src, i, 97 + rng.below(8))
    # move-to-front
    table = list(range(256))
    out = 0
    for i in range(size):
        byte = load_byte(kernel, src, i)
        rank = table.index(byte)
        table.pop(rank)
        table.insert(0, byte)
        store_byte(kernel, dst, out, rank)
        out += 1
    # run-length encode the ranks in place
    encoded = 0
    i = 0
    while i < out:
        rank = load_byte(kernel, dst, i)
        run = 1
        while i + run < out and run < 255 and \
                load_byte(kernel, dst, i + run) == rank:
            run += 1
        store_byte(kernel, dst, out + encoded, rank)
        store_byte(kernel, dst, out + encoded + 1, run)
        encoded += 2
        i += run
    checksum = 0
    for i in range(encoded):
        checksum = (checksum * 131 + load_byte(kernel, dst, out + i)) \
            % 1000003
    return checksum


def sjeng(kernel, scale="quick"):
    """458.sjeng: alpha-beta game-tree search (a Nim-like game).

    The board lives in simulated memory; the recursion and move logic
    are compute, so accesses are sparser than bzip2's.
    """
    mult = _scale(scale)
    piles = 3
    max_depth = 5 + (1 if mult > 1 else 0)
    board = alloc_words(kernel, piles)
    rng = Xorshift(0x736A65)
    for i in range(piles):
        store(kernel, board, i, 2 + rng.below(3 + mult))
    nodes = [0]

    def search(depth, alpha, beta, to_move):
        nodes[0] += 1
        total = sum(load(kernel, board, i) for i in range(piles))
        if total == 0:
            return -1000 + depth if to_move else 1000 - depth
        if depth >= max_depth:
            return total if to_move else -total
        best = -(1 << 30)
        for pile in range(piles):
            count = load(kernel, board, pile)
            for take in range(1, min(count, 3) + 1):
                store(kernel, board, pile, count - take)
                value = -search(depth + 1, -beta, -alpha, not to_move)
                store(kernel, board, pile, count)
                if value > best:
                    best = value
                if best > alpha:
                    alpha = best
                if alpha >= beta:
                    return best
        return best

    score = search(0, -(1 << 30), 1 << 30, True)
    return (score + nodes[0]) % 1000003


def hmmer(kernel, scale="quick"):
    """456.hmmer: Viterbi dynamic programming over an HMM.

    Regular DP-matrix sweeps: three loads and a store per cell.
    """
    mult = _scale(scale)
    states = 16 + 4 * mult
    steps = 40 * mult
    rng = Xorshift(0x686D6D)
    trans = alloc_words(kernel, states * states)
    emit = alloc_words(kernel, states * 4)
    for i in range(states * states):
        store(kernel, trans, i, rng.below(50))
    for i in range(states * 4):
        store(kernel, emit, i, rng.below(50))
    prev = alloc_words(kernel, states)
    cur = alloc_words(kernel, states)
    for t in range(steps):
        obs = rng.below(4)
        for s in range(states):
            best = 0
            for p in range(0, states, 3):  # sparse transition scan
                cand = load(kernel, prev, p) + \
                    load(kernel, trans, p * states + s)
                if cand > best:
                    best = cand
            store(kernel, cur, s, best + load(kernel, emit,
                                              s * 4 + obs))
        prev, cur = cur, prev
    return sum(load(kernel, prev, s) for s in range(states)) % 1000003


def libquantum(kernel, scale="quick"):
    """462.libquantum: gate-by-gate state-vector simulation.

    Fixed-point amplitude arithmetic gives real compute between the
    paired loads/stores — a mid-ratio workload.
    """
    mult = _scale(scale)
    qubits = 6 if mult == 1 else 7
    size = 1 << qubits
    # amplitudes as fixed-point <<16; start in |0>
    re = alloc_words(kernel, size)
    im = alloc_words(kernel, size)
    store(kernel, re, 0, 1 << 16)
    inv_sqrt2 = 46341  # 2^16 / sqrt(2)

    def hadamard(q):
        step = 1 << q
        for base in range(0, size, step * 2):
            for k in range(step):
                a = base + k
                b = a + step
                ra, ia = load(kernel, re, a), load(kernel, im, a)
                rb, ib = load(kernel, re, b), load(kernel, im, b)
                store(kernel, re, a, (ra + rb) * inv_sqrt2 >> 16)
                store(kernel, im, a, (ia + ib) * inv_sqrt2 >> 16)
                store(kernel, re, b, (ra - rb) * inv_sqrt2 >> 16)
                store(kernel, im, b, (ia - ib) * inv_sqrt2 >> 16)

    def cnot(control, target):
        cbit, tbit = 1 << control, 1 << target
        for idx in range(size):
            if idx & cbit and not idx & tbit:
                other = idx | tbit
                ra, ia = load(kernel, re, idx), load(kernel, im, idx)
                rb, ib = load(kernel, re, other), load(kernel, im, other)
                store(kernel, re, idx, rb)
                store(kernel, im, idx, ib)
                store(kernel, re, other, ra)
                store(kernel, im, other, ia)

    for q in range(qubits):
        hadamard(q)
    for q in range(qubits - 1):
        cnot(q, q + 1)
    hadamard(0)
    checksum = 0
    for i in range(size):
        checksum = (checksum + load(kernel, re, i) * (i + 1)) % 1000003
    return checksum


def h264ref(kernel, scale="quick"):
    """464.h264ref: exhaustive motion estimation (SAD block search).

    Two loads and an absolute difference per pixel comparison — the
    densest memory traffic of the set, hence the paper's 90x worst case.
    """
    mult = _scale(scale)
    width = height = 24 + 8 * mult
    block = 8
    rng = Xorshift(0x683264)
    ref = kernel.alloc_buf(width * height).addr
    cur = kernel.alloc_buf(width * height).addr
    for i in range(width * height):
        value = rng.below(256)
        store_byte(kernel, ref, i, value)
        store_byte(kernel, cur, i, (value + rng.below(8)) & 0xFF)
    best_total = 0
    for by in range(0, height - block, block):
        for bx in range(0, width - block, block):
            best = 1 << 30
            for dy in (-2, -1, 0, 1, 2):
                for dx in (-2, -1, 0, 1, 2):
                    y0, x0 = by + dy, bx + dx
                    if y0 < 0 or x0 < 0 or y0 + block > height or \
                            x0 + block > width:
                        continue
                    sad = 0
                    for y in range(block):
                        for x in range(block):
                            a = load_byte(kernel, cur,
                                          (by + y) * width + bx + x)
                            b = load_byte(kernel, ref,
                                          (y0 + y) * width + x0 + x)
                            sad += a - b if a > b else b - a
                        if sad >= best:
                            break
                    if sad < best:
                        best = sad
            best_total = (best_total + best) % 1000003
    return best_total


def gobmk(kernel, scale="quick"):
    """445.gobmk: random Go playouts with liberty counting on 9x9.

    Branchy board manipulation: flood fills over simulated memory with
    list-based worklists in between.
    """
    mult = _scale(scale)
    size = 9
    playouts = 6 * mult
    rng = Xorshift(0x676F21)
    board = alloc_words(kernel, size * size)
    checksum = 0
    for playout in range(playouts):
        for i in range(size * size):
            store(kernel, board, i, 0)
        color = 1
        for move in range(40):
            empties = [i for i in range(size * size)
                       if load(kernel, board, i) == 0]
            if not empties:
                break
            point = empties[rng.below(len(empties))]
            store(kernel, board, point, color)
            # capture check: flood-fill the opponent groups around point
            for neighbor in _neighbors(point, size):
                stone = load(kernel, board, neighbor)
                if stone == 3 - color:
                    group, liberties = _flood(kernel, board, neighbor,
                                              size)
                    if liberties == 0:
                        for captured in group:
                            store(kernel, board, captured, 0)
            color = 3 - color
        checksum = (checksum + sum(load(kernel, board, i)
                                   for i in range(size * size))) \
            % 1000003
    return checksum


def _neighbors(point, size):
    y, x = divmod(point, size)
    if y > 0:
        yield point - size
    if y < size - 1:
        yield point + size
    if x > 0:
        yield point - 1
    if x < size - 1:
        yield point + 1


def _flood(kernel, board, start, size):
    color = memlib.load(kernel, board, start)
    group = {start}
    work = [start]
    liberties = 0
    seen_liberty = set()
    while work:
        point = work.pop()
        for neighbor in _neighbors(point, size):
            stone = memlib.load(kernel, board, neighbor)
            if stone == 0 and neighbor not in seen_liberty:
                seen_liberty.add(neighbor)
                liberties += 1
            elif stone == color and neighbor not in group:
                group.add(neighbor)
                work.append(neighbor)
    return group, liberties


def perlbench(kernel, scale="quick"):
    """400.perlbench: interpreter-style work — a tiny regex engine.

    One of the benchmarks the paper ran but omitted from Figure 9 "in
    the interest of brevity"; available here for completeness.  The
    subject text lives in simulated memory; the pattern automaton is
    interpreted per byte.
    """
    mult = _scale(scale)
    size = 1024 * mult
    rng = Xorshift(0x7065726C)
    text = kernel.alloc_buf(size).addr
    alphabet = b"abcdefgh"
    for i in range(size):
        store_byte(kernel, text, i, alphabet[rng.below(len(alphabet))])
    # match the pattern a(b|c)+d via a hand-rolled NFA walk
    matches = 0
    i = 0
    while i < size:
        if load_byte(kernel, text, i) == ord("a"):
            j = i + 1
            seen_mid = False
            while j < size and load_byte(kernel, text, j) in (ord("b"),
                                                              ord("c")):
                seen_mid = True
                j += 1
            if seen_mid and j < size and \
                    load_byte(kernel, text, j) == ord("d"):
                matches += 1
                i = j
        i += 1
    return matches % 1000003


def gcc(kernel, scale="quick"):
    """403.gcc: compiler-style work — constant folding over bytecode.

    Also omitted from the paper's figure; a toy stack-machine program
    is stored in simulated memory, interpreted once, peephole-folded in
    place, and interpreted again (results must agree).
    """
    mult = _scale(scale)
    ops = 600 * mult
    rng = Xorshift(0x676363)
    # opcode stream: (op, operand) pairs of u32; op 0=push 1=add 2=mul
    code = alloc_words(kernel, ops * 2)
    for i in range(ops):
        op = 0 if i % 2 == 0 else 1 + rng.below(2)
        store(kernel, code, 2 * i, op)
        store(kernel, code, 2 * i + 1, 1 + rng.below(9))

    def interpret():
        stack = [1]
        for i in range(ops):
            op = load(kernel, code, 2 * i)
            arg = load(kernel, code, 2 * i + 1)
            if op == 0:
                stack.append(arg)
            elif len(stack) >= 2:
                b, a = stack.pop(), stack.pop()
                stack.append((a + b if op == 1 else a * b) % 1000003)
        return sum(stack) % 1000003

    before = interpret()
    # peephole: fold push k; push m; add -> push (k+m) patterns
    i = 0
    while i + 2 < ops:
        if (load(kernel, code, 2 * i) == 0 and
                load(kernel, code, 2 * (i + 1)) == 0 and
                load(kernel, code, 2 * (i + 2)) == 1):
            folded = (load(kernel, code, 2 * i + 1) +
                      load(kernel, code, 2 * (i + 1) + 1)) % 1000003
            store(kernel, code, 2 * i, 0)
            store(kernel, code, 2 * i + 1, folded)
            # nop out the folded pair (push 0; add == identity-ish nop
            # encoded as op 3)
            store(kernel, code, 2 * (i + 1), 3)
            store(kernel, code, 2 * (i + 2), 3)
            i += 3
        else:
            i += 1

    def interpret_folded():
        stack = [1]
        for i in range(ops):
            op = load(kernel, code, 2 * i)
            arg = load(kernel, code, 2 * i + 1)
            if op == 0:
                stack.append(arg)
            elif op == 3:
                continue
            elif len(stack) >= 2:
                b, a = stack.pop(), stack.pop()
                stack.append((a + b if op == 1 else a * b) % 1000003)
        return sum(stack) % 1000003

    after = interpret_folded()
    assert before == after, "constant folding changed semantics"
    return after


#: name -> kernel function, in the order Figure 9 plots them
SPEC_KERNELS = {
    "mcf": mcf,
    "gobmk": gobmk,
    "quantum": libquantum,
    "hmmer": hmmer,
    "sjeng": sjeng,
    "bzip2": bzip2,
    "h264ref": h264ref,
}

#: benchmarks the paper ran but left off the figure "for brevity";
#: runnable via run_spec / the CLI all the same
EXTRA_KERNELS = {
    "perlbench": perlbench,
    "gcc": gcc,
}
