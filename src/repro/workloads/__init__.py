"""Figure 9 workloads: SPEC-like kernels plus ssh/apache operations."""

from repro.workloads.runner import (ALL_KERNELS, FIGURE9_ORDER, MODES,
                                    figure9, figure9_row, run_app,
                                    run_spec, run_workload)
from repro.workloads.spec_kernels import EXTRA_KERNELS, SPEC_KERNELS

__all__ = ["ALL_KERNELS", "EXTRA_KERNELS", "FIGURE9_ORDER", "MODES",
           "SPEC_KERNELS", "figure9", "figure9_row", "run_app",
           "run_spec", "run_workload"]
