"""Helpers for workload kernels operating on simulated memory.

Figure 9's workloads must issue their loads and stores *through the
simulated memory bus* so cb-log and the Pin stub can intercept them —
the same way Pin intercepts native loads and stores.  These helpers are
the workloads' "ISA": word-sized accesses against tagged buffers.
"""

from __future__ import annotations

from repro.core.kernel import Kernel


def make_kernel(name):
    """A standalone machine for one workload run."""
    kernel = Kernel(name=name)
    kernel.start_main()
    return kernel


def alloc_words(kernel, count, tag=None):
    """Allocate a zeroed array of *count* u32 words; returns base addr."""
    buf = kernel.alloc_buf(4 * count, tag=tag, init=bytes(4 * count))
    return buf.addr


def load(kernel, base, index):
    """Load word *index* of the array at *base*."""
    return int.from_bytes(kernel.mem_read(base + 4 * index, 4), "big")


def store(kernel, base, index, value):
    kernel.mem_write(base + 4 * index, (value & 0xFFFFFFFF).to_bytes(
        4, "big"))


def load_byte(kernel, base, index):
    return kernel.mem_read(base + index, 1)[0]


def store_byte(kernel, base, index, value):
    kernel.mem_write(base + index, bytes([value & 0xFF]))


def fill_bytes(kernel, base, data):
    kernel.mem_write(base, bytes(data))


class Xorshift:
    """Tiny deterministic PRNG for workload inputs (not crypto)."""

    def __init__(self, seed):
        self.state = (seed or 1) & 0xFFFFFFFF

    def next(self):
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.state = x
        return x

    def below(self, n):
        return self.next() % n
