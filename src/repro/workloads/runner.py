"""The Figure 9 runner: each workload under native / Pin / Crowbar.

``run_spec(name, mode, scale)`` executes one SPEC-like kernel on a fresh
simulated machine with the chosen instrumentation and returns
``(elapsed_seconds, checksum, events)``.  ``run_app`` does the same for
the ssh-login and apache-request workloads.  ``figure9_row`` assembles
the three bars the paper plots for one application, and the ratio
printed above them (crowbar time / pin time).
"""

from __future__ import annotations

import time

from repro.crowbar import CbLog, PinStub
from repro.workloads import apps as app_workloads
from repro.workloads import memlib
from repro.workloads.spec_kernels import EXTRA_KERNELS, SPEC_KERNELS

#: every runnable kernel, including the off-figure extras
ALL_KERNELS = {**SPEC_KERNELS, **EXTRA_KERNELS}

MODES = ("native", "pin", "crowbar")

APP_WORKLOADS = {
    "ssh": app_workloads.SshLoginWorkload,
    "apache": app_workloads.ApacheRequestWorkload,
}

#: Figure 9's x-axis order.
FIGURE9_ORDER = ("ssh", "mcf", "gobmk", "apache", "quantum", "hmmer",
                 "sjeng", "bzip2", "h264ref")


def _instrumentation(kernel, mode):
    if mode == "native":
        return _NullInstrumentation()
    if mode == "pin":
        return PinStub(kernel)
    if mode == "crowbar":
        return CbLog(kernel)
    raise ValueError(f"unknown mode {mode!r}")


class _NullInstrumentation:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def run_spec(name, mode="native", scale="quick"):
    """One SPEC-like kernel run; returns (seconds, checksum, events)."""
    fn = ALL_KERNELS[name]
    kernel = memlib.make_kernel(f"wl-{name}")
    instr = _instrumentation(kernel, mode)
    start = time.perf_counter()
    with instr:
        checksum = fn(kernel, scale)
    elapsed = time.perf_counter() - start
    return elapsed, checksum, _event_count(instr)


def run_app(name, mode="native", scale="quick"):
    """One server operation (login / request) under instrumentation."""
    workload = APP_WORKLOADS[name](scale)
    try:
        instr = _instrumentation(workload.kernel, mode)
        start = time.perf_counter()
        with instr:
            checksum = workload.run()
        elapsed = time.perf_counter() - start
        return elapsed, checksum, _event_count(instr)
    finally:
        workload.close()


def run_workload(name, mode="native", scale="quick"):
    if name in ALL_KERNELS:
        return run_spec(name, mode, scale)
    return run_app(name, mode, scale)


def _event_count(instr):
    if isinstance(instr, PinStub):
        return instr.reads + instr.writes
    if isinstance(instr, CbLog):
        return len(instr.trace)
    return 0


def figure9_row(name, scale="quick", repeats=1):
    """The three bars for one application, plus the crowbar/pin ratio."""
    times = {}
    for mode in MODES:
        best = None
        for _ in range(repeats):
            elapsed, _, _ = run_workload(name, mode, scale)
            best = elapsed if best is None else min(best, elapsed)
        times[mode] = best
    times["crowbar_over_pin"] = (times["crowbar"] / times["pin"]
                                 if times["pin"] else float("inf"))
    times["crowbar_over_native"] = (times["crowbar"] / times["native"]
                                    if times["native"] else float("inf"))
    times["pin_over_native"] = (times["pin"] / times["native"]
                                if times["native"] else float("inf"))
    return times


def figure9(scale="quick", workloads=FIGURE9_ORDER):
    """The full figure: {workload: row} in plot order."""
    return {name: figure9_row(name, scale) for name in workloads}
