"""Application workloads for Figure 9: an ssh login and an httpd request.

The paper's lowest instrumentation ratios come from OpenSSH (2.4x over
bare Pin) and Apache (8.8x): real network servers spend most of their
time in computation (crypto) rather than raw loads/stores, so per-access
instrumentation hurts them least.  These drivers run one complete
operation against the Wedge-partitioned servers with the instrumentation
attached to the *server's* kernel — the process cb-log would wrap.
"""

from __future__ import annotations

from repro.apps.httpd import MitmPartitionHttpd
from repro.apps.httpd.content import build_request
from repro.apps.sshd import WedgeSshd
from repro.crypto.rng import DetRNG
from repro.net import Network
from repro.sshlib import SshClient
from repro.tls import TlsClient


class SshLoginWorkload:
    """One password login + one small exec over SSH-SIM."""

    name = "ssh"

    def __init__(self, scale="quick"):
        self.network = Network()
        self.server = WedgeSshd(self.network, "ssh-wl:22",
                                seed="fig9-ssh").start()
        self._counter = 0

    @property
    def kernel(self):
        return self.server.kernel

    def run(self):
        self._counter += 1
        client = SshClient(
            DetRNG(f"fig9-ssh-client{self._counter}"),
            expected_host_key=self.server.env.host_key.public())
        conn = client.connect(self.network, "ssh-wl:22")
        conn.auth_password("alice", b"wonderland")
        output = conn.exec("whoami")
        conn.close()
        return len(output)

    def close(self):
        self.server.stop()


class ApacheRequestWorkload:
    """One full HTTPS request against the Figures-3-5 partitioning."""

    name = "apache"

    def __init__(self, scale="quick"):
        self.network = Network()
        self.server = MitmPartitionHttpd(self.network, "httpd-wl:443",
                                         seed="fig9-httpd").start()
        self._counter = 0

    @property
    def kernel(self):
        return self.server.kernel

    def run(self):
        self._counter += 1
        client = TlsClient(
            DetRNG(f"fig9-httpd-client{self._counter}"),
            expected_server_key=self.server.public_key)
        conn = client.connect(self.network, "httpd-wl:443")
        response = conn.request(build_request("/index.html"))
        conn.close()
        return len(response)

    def close(self):
        self.server.stop()
