"""Whole-kernel failure: the cluster chaos mode.

Every other fault site wounds one compartment; ``kernel:kill`` takes a
whole machine.  A :class:`KernelFailure` draws a victim kernel and a
kill round from the plan's seed (same seed, same kill — the campaign's
no-kill baseline and kill run stay comparable) and registers an
exact-hit ``kernel`` spec on the plan.  The campaign calls
:meth:`KernelFailure.step` once per scheduling round; the round the
spec fires, the victim's name comes back and the caller performs the
kill (:meth:`~repro.core.kernel.Kernel.kill`).

The firing decision lives in the :class:`~repro.faults.FaultPlan` (it
shows up in ``plan.injected`` and as a ``fault.fired`` event like every
other injection); the *effect* — tearing the kernel off the wire — is
applied by the cluster, which owns the kernel objects.
"""

from __future__ import annotations

import random

from repro.core.errors import WedgeError

#: seed-mixing constant so the kill draw is independent of the plan's
#: own rate draws
_KILL_SALT = 0x6B696C6C   # "kill"


class KernelFailure:
    """One seeded whole-kernel kill, scheduled on a :class:`FaultPlan`.

    *kernels* is the ordered collection of kernel names eligible to die;
    *window* = ``(lo, hi)`` bounds the 1-based scheduling round the kill
    lands in.
    """

    def __init__(self, plan, kernels, *, window=(2, 6),
                 power_loss=False):
        names = list(kernels)
        if not names:
            raise WedgeError("KernelFailure needs at least one kernel")
        lo, hi = int(window[0]), int(window[1])
        if lo < 1 or hi < lo:
            raise WedgeError(f"bad kill window {window!r}")
        rng = random.Random((int(plan.seed) << 1) ^ _KILL_SALT)
        #: 1-based round the kill fires in
        self.round = rng.randint(lo, hi)
        #: name of the kernel that will die
        self.victim = names[rng.randrange(len(names))]
        self.plan = plan
        #: the seeded ``power-loss`` flavour: the caller should apply
        #: the effect as ``kernel.kill(power_loss=True, seed=plan.seed)``
        #: so the victim's disks tear at a reproducible prefix
        self.power_loss = bool(power_loss)
        kind = "power_loss" if self.power_loss else "kill"
        self.spec = plan.add("kernel", kind, at=(self.round,), limit=1)
        #: victim name once the kill has fired, else None
        self.killed = None

    def step(self):
        """Advance one scheduling round.

        Returns the victim kernel's name the round the kill fires,
        ``None`` every other round.  The caller owns the effect.
        """
        if self.plan.fire("kernel") is not None:
            self.killed = self.victim
            return self.victim
        return None

    def __repr__(self):
        state = f"killed={self.killed!r}" if self.killed else "pending"
        return (f"<KernelFailure victim={self.victim!r} "
                f"round={self.round} {state}>")
