"""Deterministic fault injection and compartment supervision.

The Wedge promise is *containment*: a crashing or hijacked compartment
must not take the application down with it.  This package provides the
machinery to prove that empirically:

* :mod:`repro.faults.plan` — a seeded :class:`FaultPlan` the kernel
  consults at its chokepoints (memory access, allocation, callgate
  invocation, network connect/send) to inject faults at configurable
  rates or exact hit counts;
* :mod:`repro.faults.supervise` — :class:`RestartPolicy` and the
  supervised-sthread machinery: bounded restart-with-backoff from the
  COW snapshot, watchdog timeouts on callgates, and a terminal
  ``degraded`` state surfaced as a typed
  :class:`~repro.core.errors.CompartmentDown`;
* :mod:`repro.faults.chaos` — the ``python -m repro chaos`` harness:
  run every shipped app under randomized injection and assert the
  service invariants (listener alive, stores intact, no secrets in
  error paths, restarted gates observe fresh COW state).
"""

from repro.faults.chaos import (CHAOS_APP_NAMES, ChaosReport,
                                breaker_recovery_drill,
                                cow_freshness_probe, run_chaos)
from repro.faults.kernelfail import KernelFailure
from repro.faults.plan import FaultEvent, FaultPlan, FaultSpec
from repro.faults.supervise import RestartPolicy, SupervisedSthread

__all__ = [
    "CHAOS_APP_NAMES",
    "ChaosReport",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "KernelFailure",
    "RestartPolicy",
    "SupervisedSthread",
    "breaker_recovery_drill",
    "cow_freshness_probe",
    "run_chaos",
]
