"""Supervision: restart crashed compartments from the COW snapshot.

The paper's fork-from-checkpoint semantics make sthread creation cheap
and *clean*: every incarnation starts from the pristine pre-``main``
image plus a fresh private heap and stack.  Supervision leans on
exactly that — restarting a crashed compartment is just building a new
sthread from the same :class:`~repro.core.policy.SecurityContext`, so
no state leaks from the faulted incarnation into its replacement.

* :class:`RestartPolicy` bounds the restarts (count, backoff, optional
  per-invocation watchdog for callgates).
* :class:`SupervisedSthread` is the parent-facing handle returned by
  ``sthread_create(..., supervise=policy)``.  It absorbs
  :class:`~repro.core.errors.CompartmentFault` deaths up to the restart
  budget; beyond that it turns terminally *degraded* and
  ``sthread_join`` surfaces a typed
  :class:`~repro.core.errors.CompartmentDown` instead of a raw
  traceback.

Ordinary runtime errors (peer hung up, protocol violation — the
``status == "error"`` path) do **not** trigger a restart: the
compartment finished its job badly, it was not killed.
"""

from __future__ import annotations

import threading
import time

from repro.core.errors import (CompartmentDown, JoinTimeout, SthreadError)
from repro.core.sthread import STATUS_FAULTED
from repro.observe.events import (COMPARTMENT_DOWN, COW_RESTORE,
                                  SUPERVISE_RESTART)


class RestartPolicy:
    """How a supervised compartment may be restarted.

    ``max_restarts`` bounds the *total* restarts over the compartment's
    lifetime; ``backoff`` (doubling by ``backoff_factor`` each restart)
    spaces them; ``watchdog`` — callgates only — abandons an invocation
    that exceeds the deadline and raises
    :class:`~repro.core.errors.GateTimeout`.  ``breaker`` — callgates
    only — is an optional
    :class:`~repro.resilience.BreakerPolicy`: instead of staying
    terminally degraded past the restart budget, the gate opens a
    circuit breaker and may recover through a half-open probe after the
    cooldown (see :mod:`repro.resilience.breaker`).
    """

    def __init__(self, max_restarts=3, *, backoff=0.005,
                 backoff_factor=2.0, watchdog=None, breaker=None):
        if max_restarts < 0:
            raise SthreadError("max_restarts must be >= 0")
        self.max_restarts = int(max_restarts)
        self.backoff = float(backoff)
        self.backoff_factor = float(backoff_factor)
        self.watchdog = watchdog
        self.breaker = breaker

    def __repr__(self):
        return (f"<RestartPolicy max_restarts={self.max_restarts} "
                f"backoff={self.backoff} watchdog={self.watchdog} "
                f"breaker={self.breaker}>")


class SupervisedSthread:
    """Parent-facing handle over a restartable chain of incarnations.

    API-compatible with :class:`~repro.core.sthread.Sthread` where the
    apps need it (``name``, ``status``, ``result``, ``faulted``,
    ``fault``, ``join``), so ``kernel.sthread_join`` accepts either.
    """

    kind = "sthread"

    def __init__(self, kernel, sc, parent, body, arg, *, name, policy,
                 spawn="thread", emulate=False):
        self.kernel = kernel
        self.sc = sc
        self.parent = parent
        self.body = body
        self.arg = arg
        self.name = name
        self.policy = policy
        self.spawn = spawn
        self.emulate = emulate
        self.restarts = 0
        self.degraded = False
        self.last_fault = None
        self.result = None
        self.error = None
        self.incarnations = []
        #: span of the compartment that created this handle, captured on
        #: the *calling* thread (the supervisor runs on its own thread,
        #: where `parent.span` could race with the parent's next request)
        self.origin_span = getattr(parent, "span", None)
        self._thread = None
        self._done = threading.Event()
        self._watchers = []                 # reactor endpoint protocol
        self._watch_lock = threading.Lock()
        self._joined = False

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        if self.spawn == "inline":
            self._supervise()
        elif self.spawn == "thread":
            self._thread = threading.Thread(
                target=self._supervise, name=f"sup:{self.name}",
                daemon=True)
            self._thread.start()
        else:
            raise SthreadError(f"unknown spawn mode {self.spawn!r}")
        return self

    def _spawn_incarnation(self, generation):
        """Build a fresh sthread from the COW snapshot (no carry-over)."""
        kernel = self.kernel
        name = self.name if generation == 0 \
            else f"{self.name}~r{generation}"
        # a restart is a *fresh* span linked to the crashed incarnation's
        # span, so a trace shows the whole restart chain end to end
        if generation == 0 or not self.incarnations:
            span_parent = self.origin_span
        else:
            span_parent = self.incarnations[-1].span
        child = kernel._build_sthread(self.sc, self.parent, name=name,
                                      kind="sthread",
                                      span_parent=span_parent)
        child.table.emulation = self.emulate
        kernel.costs.charge("task_create")
        if generation > 0:
            obs = kernel.observe
            if obs.enabled:
                obs.emit(SUPERVISE_RESTART, comp=self.name,
                         generation=generation, restarts=self.restarts)
                obs.emit(COW_RESTORE, comp=name,
                         pages=len(kernel.image.snapshot_frames))
            if child.span is not None:
                child.span.fields.update(restart=True,
                                         generation=generation)
        self.incarnations.append(child)
        return child

    def _supervise(self):
        delay = self.policy.backoff
        generation = 0
        while True:
            child = self._spawn_incarnation(generation)
            # run the incarnation on *this* thread: the supervisor is
            # the thread of control, each incarnation is a compartment
            child.run_body(self.kernel, self.body, self.arg)
            if child.status != STATUS_FAULTED:
                self.result = child.result
                self.error = child.error
                break
            self.last_fault = child.fault
            if self.restarts >= self.policy.max_restarts:
                self.degraded = True
                obs = self.kernel.observe
                if obs.enabled:
                    obs.emit(COMPARTMENT_DOWN, comp=self.name,
                             restarts=self.restarts,
                             fault=str(self.last_fault))
                break
            self.restarts += 1
            generation += 1
            if delay > 0:
                time.sleep(delay)
            delay *= self.policy.backoff_factor
        with self._watch_lock:
            self._done.set()
            watchers = list(self._watchers)
        for cb in watchers:
            cb(self)

    # -- Sthread-compatible surface ------------------------------------------

    @property
    def current_incarnation(self):
        return self.incarnations[-1] if self.incarnations else None

    @property
    def status(self):
        if self.degraded:
            return "degraded"
        child = self.current_incarnation
        return child.status if child is not None else "new"

    @property
    def done(self):
        return self._done.is_set()

    # reactor endpoint protocol: the settled chain is the completion
    # event, so a cooperative parent can ``yield wait_done(handle)``
    # exactly as it would for a bare sthread

    def ready(self):
        return self._done.is_set()

    def add_watcher(self, cb):
        with self._watch_lock:
            if cb not in self._watchers:
                self._watchers.append(cb)

    def remove_watcher(self, cb):
        with self._watch_lock:
            try:
                self._watchers.remove(cb)
            except ValueError:
                pass

    @property
    def faulted(self):
        """Only a *terminal* failure counts: absorbed faults do not."""
        return self.degraded

    @property
    def fault(self):
        return self.last_fault if self.degraded else None

    def join(self, timeout=30.0):
        """Wait for the supervised chain to settle; return the result.

        Raises :class:`~repro.core.errors.JoinTimeout` if the chain is
        still running (or restarting) after *timeout*.  A degraded chain
        returns ``None`` here; ``kernel.sthread_join`` turns that into a
        typed :class:`~repro.core.errors.CompartmentDown`.
        """
        if self._joined:
            raise SthreadError(f"{self.name} already joined")
        if not self._done.wait(timeout):
            raise JoinTimeout(f"join of {self.name} timed out "
                              f"after {timeout}s",
                              sthread=self, timeout=timeout)
        self._joined = True
        if self._thread is not None:
            self._thread.join(timeout)
        return self.result

    def down_error(self):
        """The typed error a caller should see for this degraded chain."""
        return CompartmentDown(
            f"compartment {self.name!r} degraded after "
            f"{self.restarts} restart(s): {self.last_fault}",
            name=self.name, restarts=self.restarts,
            last_fault=self.last_fault)

    def __repr__(self):
        return (f"<SupervisedSthread {self.name!r} status={self.status} "
                f"restarts={self.restarts}>")
