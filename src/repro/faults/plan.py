"""Seeded fault plans: *where*, *what kind*, and *when* to inject.

A :class:`FaultPlan` is consulted by the kernel (and the simulated
network) at well-known **sites**:

===============  ========================================================
site             chokepoint
===============  ========================================================
``mem_read``     :meth:`Kernel.mem_read` — injects a memory violation
``mem_write``    :meth:`Kernel.mem_write` — injects a memory violation
``smalloc``      :meth:`Kernel.smalloc` — injects allocator exhaustion
``malloc``       :meth:`Kernel.malloc` — injects allocator exhaustion
``cgate``        callgate entry (inside the gate compartment) — injects
                 a crash or a delay (for watchdog testing)
``net_connect``  :meth:`Network.connect` — connection refused
``net_send``     :meth:`DuplexStream.send` — drop / delay / reset
``kernel``       :class:`~repro.faults.KernelFailure` — whole-kernel kill
===============  ========================================================

Each :class:`FaultSpec` fires either probabilistically (``rate``) from
the plan's seeded RNG, or at **exact hit counts** (``at``, 1-based per
site), which is what the deterministic unit tests use.  Firing decisions
are made here; the *effect* (which exception, what delay) is applied by
the chokepoint that asked.

Scoping: by default (``scope="untrusted"``) kernel-side sites inject
only into sthread and callgate compartments — the trusted bootstrap
process stays sound, matching the threat model (the paper assumes the
privileged master is correct; it is the exposed compartments that
crash).  Network sites have no compartment context and always qualify.
"""

from __future__ import annotations

import random
import threading

from repro.core.errors import WedgeError
from repro.observe.events import FAULT_FIRED

#: Compartment kinds eligible for injection under the default scope.
UNTRUSTED_KINDS = ("sthread", "callgate")

#: Site -> fault kinds a spec may carry there.
SITE_KINDS = {
    "mem_read": ("memfault",),
    "mem_write": ("memfault",),
    "smalloc": ("enomem",),
    "malloc": ("enomem",),
    "cgate": ("crash", "delay"),
    "net_connect": ("refuse",),
    "net_send": ("drop", "delay", "reset"),
    "kernel": ("kill", "power_loss"),
}


class FaultSpec:
    """One injection rule: fire *kind* at *site*, by rate or hit count."""

    __slots__ = ("site", "kind", "rate", "at", "limit", "delay", "fired")

    def __init__(self, site, kind, *, rate=0.0, at=(), limit=None,
                 delay=0.05):
        if site not in SITE_KINDS:
            raise WedgeError(f"unknown fault site {site!r}")
        if kind not in SITE_KINDS[site]:
            raise WedgeError(
                f"fault kind {kind!r} does not apply at site {site!r} "
                f"(valid: {SITE_KINDS[site]})")
        self.site = site
        self.kind = kind
        self.rate = float(rate)
        self.at = frozenset(int(n) for n in at)
        #: stop firing after this many injections (None = unbounded)
        self.limit = limit
        #: sleep length for ``delay`` kinds, seconds (kept small so
        #: abandoned watchdog threads drain quickly)
        self.delay = float(delay)
        self.fired = 0

    def __repr__(self):
        when = f"rate={self.rate}" if self.rate else f"at={sorted(self.at)}"
        return f"<FaultSpec {self.site}:{self.kind} {when} fired={self.fired}>"


class FaultEvent:
    """One injection that actually happened (the plan's audit log)."""

    __slots__ = ("site", "kind", "hit", "compartment")

    def __init__(self, site, kind, hit, compartment):
        self.site = site
        self.kind = kind
        self.hit = hit
        self.compartment = compartment

    def __repr__(self):
        return (f"<FaultEvent {self.site}:{self.kind} hit={self.hit} "
                f"in {self.compartment!r}>")


class FaultPlan:
    """A deterministic, seeded schedule of faults.

    The same seed over the same sequence of kernel operations reproduces
    the same injections (rate draws come from one seeded RNG, hit
    counters are per-site).  Install with
    :meth:`repro.core.kernel.Kernel.install_faults`; flip
    :attr:`enabled` to pause injection without uninstalling.
    """

    def __init__(self, seed=0, *, scope="untrusted"):
        if scope not in ("untrusted", "all"):
            raise WedgeError(f"unknown fault scope {scope!r}")
        self.seed = seed
        self.scope = scope
        self.enabled = True
        self.specs = []
        self.hits = {}           # site -> eligible-hit counter
        self.injected = []       # FaultEvent log, in firing order
        #: kernel event bus (set by Kernel.install_faults); every
        #: injection that fires is also announced as ``fault.fired``
        self.observer = None
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def add(self, site, kind, *, rate=0.0, at=(), limit=None, delay=0.05):
        """Register a rule; returns the :class:`FaultSpec`."""
        spec = FaultSpec(site, kind, rate=rate, at=at, limit=limit,
                         delay=delay)
        self.specs.append(spec)
        return spec

    def _eligible(self, compartment):
        if compartment is None:          # network sites: always in scope
            return True
        if self.scope == "all":
            return True
        return compartment.kind in UNTRUSTED_KINDS

    def fire(self, site, *, compartment=None):
        """Should *site* fault right now?  Returns the spec, or None.

        Counts one eligible hit for *site*, then asks each matching spec
        in registration order; the first that fires wins.
        """
        if not self.enabled or not self._eligible(compartment):
            return None
        chosen = None
        hit = 0
        with self._lock:
            hit = self.hits.get(site, 0) + 1
            self.hits[site] = hit
            for spec in self.specs:
                if spec.site != site:
                    continue
                if spec.limit is not None and spec.fired >= spec.limit:
                    continue
                if hit in spec.at or \
                        (spec.rate and self._rng.random() < spec.rate):
                    spec.fired += 1
                    name = getattr(compartment, "name", None)
                    self.injected.append(
                        FaultEvent(site, spec.kind, hit, name))
                    chosen = spec
                    break
        if chosen is not None:
            obs = self.observer
            if obs is not None and obs.enabled:
                obs.emit(FAULT_FIRED,
                         comp=getattr(compartment, "name", None),
                         site=site, kind=chosen.kind, hit=hit)
        return chosen

    @property
    def injection_count(self):
        return len(self.injected)

    def __repr__(self):
        return (f"<FaultPlan seed={self.seed} specs={len(self.specs)} "
                f"injected={len(self.injected)} enabled={self.enabled}>")
