"""The chaos harness: prove crash containment end-to-end.

For each shipped application this module runs a fault-injection
campaign::

    build server (per-connection compartments supervised)
      -> one clean session (capture the expected observation)
      -> install a seeded FaultPlan, hammer sessions until the target
         injection count is reached
      -> disable injection, run one clean probe session
      -> verify: probe result identical to the baseline, sensitive
         blobs byte-identical, listener still accepting

A campaign passes when every injected fault was *contained*: client
sessions may fail or be denied, but the daemon never dies, no sensitive
state is corrupted, and a post-chaos clean session is served exactly as
before the storm.  :func:`cow_freshness_probe` separately proves that a
restarted compartment observes the pristine pre-``main`` snapshot, not
the scribblings of its crashed predecessor.

Run from the command line: ``python -m repro chaos --seed 1 --faults 50``.
"""

from __future__ import annotations

from collections import Counter

import time

from repro.core.errors import (CallgateDegraded, MemoryViolation,
                               ProtocolError, WedgeError)
from repro.faults.plan import FaultPlan
from repro.faults.supervise import RestartPolicy
from repro.observe.events import (BREAKER_CLOSE, CGATE_DEGRADED,
                                  COMPARTMENT_DOWN)
from repro.observe.record import FlightRecorder
from repro.resilience.breaker import BreakerPolicy

#: Client-side timeout for chaos sessions, seconds.  Short: a session
#: whose peer compartment crashed should give up quickly so the
#: campaign keeps moving.
CLIENT_TIMEOUT = 2.0

#: Safety valve: stop hammering even if the injection target was not
#: reached (the report then shows the shortfall).
MAX_SESSIONS = 400

#: Ring capacity of the flight recorder that rides along with every
#: campaign (bounded: memory cost is fixed no matter how long the storm).
FLIGHT_CAPACITY = 200

#: Per-site injection rates used by :func:`default_plan`.  ``reset`` is
#: preferred over ``drop`` for the network leg: a reset surfaces at both
#: ends immediately, a silent drop costs a full client timeout per hit.
DEFAULT_RATES = {
    ("mem_read", "memfault"): 0.004,
    ("mem_write", "memfault"): 0.004,
    ("smalloc", "enomem"): 0.01,
    ("malloc", "enomem"): 0.01,
    ("cgate", "crash"): 0.05,
    ("net_connect", "refuse"): 0.02,
    ("net_send", "reset"): 0.004,
}


def default_plan(seed, rates=None):
    """The standard chaos mix: every site armed at a low rate."""
    plan = FaultPlan(seed)
    for (site, kind), rate in (rates or DEFAULT_RATES).items():
        plan.add(site, kind, rate=rate)
    return plan


def default_policy():
    """Supervision applied to per-connection compartments under chaos.

    The breaker runs with ``cooldown=0.0`` so probe admission depends
    only on control flow, never on wall-clock elapsed time — campaigns
    stay bit-for-bit deterministic per seed (a time-based cooldown
    would make the fault plan's RNG consumption racy against the
    scheduler).
    """
    return RestartPolicy(max_restarts=2, backoff=0.001,
                         breaker=BreakerPolicy(cooldown=0.0))


# -- per-app drivers ----------------------------------------------------------


class ChaosTarget:
    """One application under chaos: build it, poke it, check it."""

    def __init__(self, name, make, session, snapshot, rates=None,
                 rebuild=None):
        self.name = name
        self.make = make
        self.session = session
        self.snapshot = snapshot
        #: per-app rate overrides (sparser apps need hotter sites to
        #: reach the same injection count in a bounded session budget)
        self.rates = dict(DEFAULT_RATES)
        self.rates.update(rates or {})
        #: ``rebuild(server, policy)`` -> a fresh incarnation on the
        #: *same* network, address and durable state (the power-loss
        #: drill's recovery path); None for apps with nothing durable
        self.rebuild = rebuild


def _make_httpd_simple(policy):
    from repro.apps.httpd.simple import SimplePartitionHttpd
    from repro.net import Network
    return SimplePartitionHttpd(Network(), "chaos-simple:443",
                                supervise=policy)


def _make_httpd_mitm(policy):
    from repro.apps.httpd.mitm import MitmPartitionHttpd
    from repro.net import Network
    return MitmPartitionHttpd(Network(), "chaos-mitm:443",
                              supervise=policy)


def _make_sshd(policy):
    from repro.apps.sshd.wedge import WedgeSshd
    from repro.net import Network
    return WedgeSshd(Network(), "chaos-sshd:22", supervise=policy)


def _make_pop3(policy):
    from repro.apps.pop3.server import PartitionedPop3
    from repro.net import Network
    return PartitionedPop3(Network(), "chaos-pop3:110", supervise=policy)


def _make_lb(policy):
    from repro.apps.httpd.monolithic import MonolithicHttpd
    from repro.apps.lb.server import LbServer
    from repro.cluster.health import HealthResponder
    from repro.net import Network
    network = Network()
    backend = MonolithicHttpd(network, "chaos-be:443")
    responder = HealthResponder(network, "chaos-be:health")
    server = LbServer(network, "chaos-lb:443",
                      [{"name": "chaos-be", "addr": "chaos-be:443",
                        "health": "chaos-be:health"}],
                      breaker_policy=BreakerPolicy(cooldown=0.0),
                      supervise=policy, managed=[backend, responder])
    server.public_key = backend.public_key
    return server


_KV_PRELOAD = {b"alpha": b"AAA", b"beta": b"BBB", b"gamma": b"CCC"}


def _make_kv(policy):
    from repro.apps.kv import KvServer
    from repro.net import Network
    # ttl=0 preloads never expire, so GET-only chaos sessions leave the
    # store region byte-identical by construction — any diff the
    # campaign sees is real fault leakage, not cache churn.  The store
    # is durable so the power-loss drill can recover the same bytes
    # from the platter after a seeded crash.
    return KvServer(Network(), "chaos-kv:9090", preload=_KV_PRELOAD,
                    supervise=policy, durable=True)


def _rebuild_kv(server, policy):
    from repro.apps.kv import KvServer
    # same network, same address, same platter: everything the rebuilt
    # tier knows, it recovered from the disk (the preload only matters
    # if the device somehow mounted virgin)
    return KvServer(server.network, server.addr, preload=_KV_PRELOAD,
                    supervise=policy, disk=server.disk)


def _kv_session(server, index, strict=False, timeout=CLIENT_TIMEOUT):
    import zlib
    from repro.apps.kv import KvClient
    from repro.core.kernel import Kernel
    kernel = Kernel(net=server.network, name=f"chaos-kv-client{index}")
    kernel.start_main()
    client = KvClient(kernel, server.addr, timeout=timeout)
    if strict:
        # the baseline/probe pair must be reply-identical, so the
        # strict batch is fixed
        batch = [b"GET alpha", b"GET beta", b"GET gamma"]
    else:
        # overload hands string indices through here, so rotate by
        # digest rather than arithmetic on the index itself
        key = (b"alpha", b"beta",
               b"gamma")[zlib.crc32(str(index).encode()) % 3]
        batch = [b"GET " + key, b"GET alpha"]
    return client.execute(batch)


def _kv_snapshot(server):
    # kv-meta is deliberately absent: recency metadata legitimately
    # mutates on every hit; the byte-identity claim is about the data
    return {"kv-store region": server.store_bytes()}


def _httpd_session(server, index, strict=False, timeout=CLIENT_TIMEOUT):
    from repro.apps.httpd.content import build_request
    from repro.crypto import DetRNG
    from repro.tls import TlsClient
    from repro.apps.lb.server import encode_preamble
    client = TlsClient(DetRNG(f"chaos{index}"),
                       expected_server_key=server.public_key)
    # connect the socket ourselves so it is closed even when the
    # handshake dies half-way (an abandoned open socket would park the
    # server worker on its recv timeout)
    sock = server.network.connect(server.addr)
    try:
        conn = client.handshake(sock, resume=False, timeout=timeout)
        return conn.request(build_request("/"))
    finally:
        sock.close()


def _httpd_snapshot(server):
    from repro.apps.httpd.content import build_response
    return {"page /": build_response(server.pages, "/"),
            "server key": server.public_key.to_bytes()}


def _lb_session(server, index, strict=False, timeout=CLIENT_TIMEOUT):
    from repro.apps.httpd.content import build_request
    from repro.crypto import DetRNG
    from repro.tls import TlsClient
    if strict or index % 8 == 0:
        # chaos trips the backend's breaker (one refused connect ejects
        # it); the health-checker cadence re-admits it through the
        # half-open probe — under injection for the periodic sweeps,
        # clean for the strict probes
        for _ in range(3):
            try:
                if server.health_sweep()["health"] == [1]:
                    break
            except WedgeError:
                continue
    from repro.apps.lb.server import encode_preamble
    client = TlsClient(DetRNG(f"chaos{index}"),
                       expected_server_key=server.public_key)
    sock = server.network.connect(server.addr)
    try:
        sock.send(encode_preamble(b"chaoskey"))
        conn = client.handshake(sock, resume=False, timeout=timeout)
        return conn.request(build_request("/"))
    finally:
        sock.close()


def _lb_snapshot(server):
    return {"ring": bytes(server._ring_buf.read()),
            "health": bytes(server.health_bytes())}


def _sshd_session(server, index, strict=False, timeout=CLIENT_TIMEOUT):
    from repro.crypto import DetRNG
    from repro.sshlib.client import SshConnection
    from repro.sshlib.transport import ClientTransport
    from repro.tls.records import StreamTransport
    sock = server.network.connect(server.addr)
    try:
        driver = ClientTransport(
            StreamTransport(sock, timeout), DetRNG(f"chaos{index}"),
            expected_host_key=server.env.host_key.public())
        conn = SshConnection(driver.run(), driver.session_hash,
                             driver.host_key)
        conn.auth_password("alice", b"wonderland")
        out = conn.exec("whoami")
        conn.close()
        return out
    finally:
        sock.close()


def _sshd_snapshot(server):
    kernel = server.kernel
    fd = kernel.open("/etc/shadow", "r")
    try:
        shadow = kernel.read(fd, 1 << 20)
    finally:
        kernel.close(fd)
    return {"/etc/shadow": shadow,
            "host key": server.env.host_key.public().to_bytes()}


def _pop3_session(server, index, strict=False, timeout=CLIENT_TIMEOUT):
    from repro.apps.pop3.client import Pop3Client
    client = Pop3Client(server.network, server.addr,
                        timeout=timeout)
    try:
        if not client.login("alice", b"wonderland"):
            # a dead login gate *denies*; only the clean probe treats
            # that as a failure
            if strict:
                raise ProtocolError("clean probe: login denied")
            client.quit()
            return None
        sizes = client.list_messages()
        message = client.retrieve(1)
        client.quit()
        return {"sizes": sizes, "message 1": message}
    finally:
        client.sock.close()


def _pop3_snapshot(server):
    return {"passwords": bytes(server.pw_buf.read()),
            "mail spool": bytes(server.mail_buf.read())}


CHAOS_TARGETS = {
    "httpd-simple": ChaosTarget("httpd-simple", _make_httpd_simple,
                                _httpd_session, _httpd_snapshot),
    "httpd-mitm": ChaosTarget("httpd-mitm", _make_httpd_mitm,
                              _httpd_session, _httpd_snapshot),
    "sshd-wedge": ChaosTarget(
        "sshd-wedge", _make_sshd, _sshd_session, _sshd_snapshot,
        # few kernel-site hits per login, so run the gates hotter
        rates={("cgate", "crash"): 0.12, ("mem_read", "memfault"): 0.01,
               ("mem_write", "memfault"): 0.01}),
    "pop3": ChaosTarget(
        "pop3", _make_pop3, _pop3_session, _pop3_snapshot,
        # a POP3 exchange touches only a handful of eligible sites
        rates={("cgate", "crash"): 0.12, ("mem_read", "memfault"): 0.03,
               ("mem_write", "memfault"): 0.03,
               ("net_send", "reset"): 0.01}),
    "kv": ChaosTarget(
        "kv", _make_kv, _kv_session, _kv_snapshot,
        # two gate hops (store, then the delegated eviction touch) and
        # a whole-region read per command: plenty of cgate/mem sites,
        # few net sites per session
        rates={("cgate", "crash"): 0.10, ("mem_read", "memfault"): 0.02,
               ("mem_write", "memfault"): 0.02,
               ("net_send", "reset"): 0.01},
        rebuild=_rebuild_kv),
    "lb": ChaosTarget(
        "lb", _make_lb, _lb_session, _lb_snapshot,
        # the balancer's own kernel sees few mem sites (the ring and
        # health table) but many forwarded records; run the gates and
        # the backend leg hotter
        rates={("cgate", "crash"): 0.10, ("mem_read", "memfault"): 0.02,
               ("mem_write", "memfault"): 0.02,
               ("net_connect", "refuse"): 0.05,
               ("net_send", "reset"): 0.008}),
}

CHAOS_APP_NAMES = tuple(CHAOS_TARGETS)


# -- the campaign -------------------------------------------------------------


class ChaosReport:
    """What one campaign did and whether containment held."""

    def __init__(self, app, seed, target_faults):
        self.app = app
        self.seed = seed
        self.target_faults = target_faults
        self.sessions = 0
        self.failed_sessions = 0
        self.degraded_sessions = 0
        self.injected = 0
        self.by_site = Counter()
        self.restarts = 0
        self.server_errors = 0
        self.probe_ok = False
        self.violations = []
        #: observable record for differential (tlb on/off) comparison:
        #: the clean observations and the final sensitive-state blobs
        self.tlb_mode = None
        self.scheduler_mode = None
        self.baseline_obs = None
        self.probe_obs = None
        self.baseline = None
        self.final_snapshot = None
        #: flight-recorder ride-along: event volume, ring overflow, and
        #: the newest fault-triggered dump (redacted, "" if none fired)
        self.flight_events = 0
        self.flight_dropped = 0
        self.flight_dump = ""
        #: breaker recovery drill: every campaign must demonstrate at
        #: least one degraded -> half-open -> closed recovery
        self.breaker_recoveries = 0
        self.breaker_transitions = []
        #: power-loss drill outcome: None (not requested), "ok" or
        #: "failed"; replayed counts the WAL records the rebuilt
        #: incarnation applied
        self.power_loss_drill = None
        self.power_loss_replayed = None

    @property
    def passed(self):
        return (self.probe_ok and not self.violations
                and self.injected >= self.target_faults
                and self.breaker_recoveries >= 1)

    def format(self, *, flight_dump=False):
        """Render the report; ``flight_dump=True`` forces the newest
        flight-recorder dump even when the campaign passed (a failing
        campaign always shows it)."""
        mix = " ".join(f"{site}:{kind}={n}" for (site, kind), n
                       in sorted(self.by_site.items()))
        lines = [
            f"chaos {self.app} seed={self.seed}: "
            f"{'PASS' if self.passed else 'FAIL'}",
            f"  injected {self.injected} faults "
            f"(target {self.target_faults}) over {self.sessions} sessions",
            f"  mix: {mix or '-'}",
            f"  contained: {self.failed_sessions} failed + "
            f"{self.degraded_sessions} degraded sessions, "
            f"{self.restarts} supervised restarts, "
            f"{self.server_errors} server-side containments",
            f"  flight recorder: {self.flight_events} events seen, "
            f"{self.flight_dropped} scrolled off the ring",
            f"  breaker: {self.breaker_recoveries} recover"
            f"{'y' if self.breaker_recoveries == 1 else 'ies'} "
            f"({' '.join(self.breaker_transitions) or 'no transitions'})",
            f"  clean probe: {'ok' if self.probe_ok else 'FAILED'}",
        ]
        if self.power_loss_drill is not None:
            lines.append(
                f"  power loss: recovery {self.power_loss_drill} "
                f"({self.power_loss_replayed} WAL records replayed)")
        if self.tlb_mode is not None:
            mode = "on" if self.tlb_mode else "off"
            lines.insert(1, f"  tlb: {mode}")
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        if self.flight_dump and (flight_dump or not self.passed):
            lines += ["  " + line for line
                      in self.flight_dump.splitlines()]
        return "\n".join(lines)


def _count_restarts(kernel):
    # supervised sthread incarnations are named "<base>~r<generation>";
    # supervised gates count their own restarts on the record
    return (sum(1 for st in kernel.sthreads if "~r" in st.name)
            + sum(r.restarts for r in kernel._gates.values()))


def breaker_recovery_drill(kernel, *, cooldown=0.005, crashes=2):
    """Force one degraded -> half-open -> closed recovery on *kernel*.

    Random injection rarely degrades the *same* per-connection gate and
    then revisits it after the cooldown, so every campaign runs this
    deterministic drill instead of hoping: a supervised+breakered gate
    whose entry crashes exactly *crashes* times (one more than its
    restart budget) is driven to ``CallgateDegraded``, then re-invoked
    until the half-open probe is admitted and succeeds.  The breaker
    transitions land on the kernel's own event bus, so the campaign's
    flight recorder captures the full open -> half_open -> close
    sequence.

    Returns the gate's :class:`~repro.core.callgate.CallgateRecord`
    (``record.breaker`` holds the transition log) or ``None`` if the
    recovery did not complete.
    """
    from repro.core.policy import SecurityContext

    state = {"left": int(crashes)}

    def breaker_drill(trusted, arg):
        if state["left"] > 0:
            state["left"] -= 1
            raise MemoryViolation("breaker drill: induced crash",
                                  op="drill")
        return "recovered"

    policy = RestartPolicy(max_restarts=crashes - 1, backoff=0.0,
                           breaker=BreakerPolicy(cooldown=cooldown))
    record = kernel.create_gate(breaker_drill, SecurityContext(),
                                supervise=policy)
    try:
        kernel.cgate(record.id)
    except CallgateDegraded:
        pass
    else:
        return None  # the crashes did not land: no degrade to recover
    give_up = time.monotonic() + max(2.0, cooldown * 100)
    while time.monotonic() < give_up:
        try:
            if kernel.cgate(record.id) == "recovered":
                return record
            return None
        except CallgateDegraded:
            time.sleep(cooldown / 2 or 0.001)
    return None


def power_loss_drill(target, server, report, *, seed, policy):
    """Seeded power loss, then recovery on the same platter.

    The server's kernel dies with ``power_loss=True`` — its disk keeps
    an arbitrary seeded per-sector prefix of the unflushed write stream
    — and the target's ``rebuild`` hook mounts a fresh incarnation on
    the same network, address and device.  The rebuilt tier must serve
    the strict probe byte-identically and every sensitive blob must
    match the pre-campaign baseline: a cache tier that forgets its
    fsync-acked state across a power cut fails the campaign.
    """
    if target.rebuild is None or getattr(server, "wal", None) is None:
        report.power_loss_drill = "failed"
        report.violations.append(
            f"power-loss drill: {target.name!r} has no durable rebuild")
        return
    before = len(report.violations)
    server.stop()
    server.kernel.kill(power_loss=True, seed=seed)
    rebuilt = target.rebuild(server, policy)
    report.power_loss_replayed = (rebuilt.last_recovery or
                                  {}).get("replayed")
    rebuilt.start()
    try:
        try:
            probe = target.session(rebuilt, MAX_SESSIONS + 2,
                                   strict=True)
            if probe != report.baseline_obs:
                report.violations.append(
                    "power-loss drill: the recovered tier served "
                    "different content than the baseline")
        except WedgeError as exc:
            report.violations.append(
                f"power-loss drill: recovered probe failed: {exc}")
        snapshot = target.snapshot(rebuilt)
        for name, blob in snapshot.items():
            if blob != report.baseline[name]:
                report.violations.append(
                    f"power-loss drill: sensitive state {name!r} did "
                    f"not survive the crash")
    finally:
        rebuilt.stop()
        if rebuilt.kernel.alive:
            rebuilt.kernel.kill()
    report.power_loss_drill = ("ok" if len(report.violations) == before
                               else "failed")


def run_chaos(app, *, seed=0, faults=50, max_sessions=MAX_SESSIONS,
              policy=None, plan=None, tlb=None, verified=False,
              scheduler=None, power_loss=False,
              breaker_cooldown=0.005):
    """Run one chaos campaign; returns a :class:`ChaosReport`.

    ``tlb`` overrides :attr:`Kernel.DEFAULT_TLB` for the duration of the
    server build (the apps construct their kernels internally), letting
    the differential suite run the same campaign with and without the
    simulated TLB.  ``scheduler`` does the same for the kernel
    scheduling mode (``"threads"``/``"reactor"``) via
    :meth:`Kernel.scheduler_override`, so the reactor differential
    suite can run identical storms on both schedulers.
    ``verified=True`` additionally runs the static verify pass over the
    server's compartments and arms the kernel with the resulting
    certificate templates before start, so the campaign exercises the
    proof-carrying fast path under fault injection.
    ``power_loss=True`` finishes with :func:`power_loss_drill` — a
    seeded whole-kernel power cut and a recovery mount on the surviving
    platter (durable apps only).  ``breaker_cooldown`` threads through
    to :func:`breaker_recovery_drill` so campaigns can tune how long a
    degraded gate stays open before its half-open probe.
    """
    from repro.core.kernel import Kernel

    target = CHAOS_TARGETS[app]
    report = ChaosReport(app, seed, faults)
    report.tlb_mode = tlb
    report.scheduler_mode = scheduler
    sup_policy = policy or default_policy()
    saved_default = Kernel.DEFAULT_TLB
    if tlb is not None:
        Kernel.DEFAULT_TLB = tlb
    try:
        with Kernel.scheduler_override(scheduler):
            server = target.make(sup_policy)
    finally:
        Kernel.DEFAULT_TLB = saved_default
    if verified:
        from repro.analysis.verify import certify_server
        certify_server(server)
    # the flight recorder rides along for the whole campaign: when a
    # compartment terminally degrades (or a breaker closes after the
    # recovery drill) it snapshots the 50 events that led up to the
    # moment (payloads redacted)
    recorder = FlightRecorder(capacity=FLIGHT_CAPACITY,
                              dump_on=(COMPARTMENT_DOWN, CGATE_DEGRADED,
                                       BREAKER_CLOSE))
    server.kernel.observe.add_sink(recorder)
    server.start()
    try:
        # the expected behaviour, captured before any fault is armed
        baseline_obs = target.session(server, 0, strict=True)
        baseline = target.snapshot(server)
        report.baseline_obs = baseline_obs
        report.baseline = baseline

        plan = plan or default_plan(seed, target.rates)
        server.kernel.install_faults(plan)
        index = 0
        while plan.injection_count < faults and index < max_sessions:
            index += 1
            report.sessions += 1
            try:
                if target.session(server, index, strict=False) is None:
                    report.degraded_sessions += 1
            except WedgeError:
                # contained by definition: the failure surfaced as a
                # typed error in *this* client session
                report.failed_sessions += 1
        report.injected = plan.injection_count
        report.by_site = Counter((e.site, e.kind) for e in plan.injected)

        # the storm is over: injection off, the daemon must still serve
        plan.enabled = False
        try:
            probe_obs = target.session(server, max_sessions + 1,
                                       strict=True)
            report.probe_obs = probe_obs
            report.probe_ok = probe_obs == baseline_obs
            if not report.probe_ok:
                report.violations.append(
                    "clean probe served different content than before "
                    "the campaign")
        except WedgeError as exc:
            report.violations.append(f"clean probe failed: {exc}")

        report.final_snapshot = target.snapshot(server)
        for name, blob in report.final_snapshot.items():
            if blob != baseline[name]:
                report.violations.append(
                    f"sensitive state {name!r} changed during chaos")
        report.restarts = _count_restarts(server.kernel)
        report.server_errors = len(server.errors)

        # every campaign must demonstrate the previously-terminal
        # CallgateDegraded path recovering through the breaker (runs
        # after the restart count so the drill's restarts do not skew it)
        drilled = breaker_recovery_drill(server.kernel,
                                         cooldown=breaker_cooldown)
        if drilled is not None and drilled.breaker is not None:
            report.breaker_recoveries = drilled.breaker.recoveries
            report.breaker_transitions = [
                f"{a}->{b}" for a, b in drilled.breaker.transitions]
        if report.breaker_recoveries < 1:
            report.violations.append(
                "breaker recovery drill failed: no degraded -> "
                "half-open -> closed transition observed")

        if power_loss:
            power_loss_drill(target, server, report, seed=seed,
                             policy=sup_policy)
    finally:
        server.stop()
        server.kernel.observe.remove_sink(recorder)
        report.flight_events = recorder.accepted
        report.flight_dropped = recorder.dropped
        report.flight_dump = recorder.format_dump()
    if report.injected < faults:
        report.violations.append(
            f"only {report.injected} of {faults} faults injected in "
            f"{report.sessions} sessions")
    return report


def cow_freshness_probe():
    """Prove a restarted compartment starts from the pristine snapshot.

    A supervised sthread reads a pre-``main`` global, scribbles over its
    copy-on-write view of it, then faults.  The restarted incarnation
    must observe the *pristine* value again: per paper section 4.1 every
    sthread maps the pre-``main`` image COW, so a crashed compartment's
    writes die with it.  Returns the per-incarnation observations.
    """
    from repro.core.kernel import Kernel
    from repro.core.policy import SecurityContext

    kernel = Kernel(name="cow-probe")
    kernel.declare_global("cow-sentinel", 8, b"pristine")
    kernel.start_main()
    addr = kernel.image.addr_of("cow-sentinel")
    # heap memory of main, deliberately NOT granted to the sthread: the
    # first incarnation faults by touching it
    tripwire = kernel.alloc_buf(8, init=b"\0" * 8)
    observations = []

    def body(arg):
        observations.append(bytes(kernel.mem_read(addr, 8)))
        kernel.mem_write(addr, b"scribble")     # hits this COW copy only
        if len(observations) == 1:
            kernel.mem_read(tripwire.addr, 1)   # MemoryViolation: faults
        return bytes(kernel.mem_read(addr, 8))

    st = kernel.sthread_create(SecurityContext(), body, name="cow-probe",
                               spawn="thread",
                               supervise=RestartPolicy(max_restarts=2))
    result = kernel.sthread_join(st)
    return {
        "observations": observations,
        "result": result,
        "fresh": (len(observations) == 2
                  and observations[1] == b"pristine"
                  and result == b"scribble"),
    }
