"""On-disk^H^Hin-region state of the kv tier, and the eviction algebra.

Two tagged regions, two owners, one codec discipline:

* ``kv-store`` (owned by the storage-engine callgate) serializes the
  cache entries, the bounded write-behind queue and the backing store
  into one flat blob.  The gate reads the region whole, mutates a
  python-side picture, and writes the region whole — the same
  whole-block idiom the lb uses for its ring, which is what lets the
  analyzer resolve every access to the single tag grant.
* ``kv-meta`` (owned by the eviction callgate, its *sole* writer)
  serializes the recency metadata: an LRU stamp table or a clock hand
  with reference bits.

Both ``pack_*`` functions pad the blob with zeros to the full region
length so the bytes in RAM are a pure function of the logical state —
that is what makes the chaos campaign's byte-identical store check
meaningful.

The eviction algebra itself (:func:`meta_admit` .. :func:`meta_pick`)
is pure python over the unpacked dict, shared verbatim between the
eviction gate and the property-test oracle: the tests then prove the
*gate plumbing* (codec round-trip, delegation, restart) preserves the
algorithm, not a reimplementation of it.
"""

from __future__ import annotations

from repro.core.errors import WedgeError

#: Protocol limits: one token key, hex-encoded values.
MAX_KEY = 64
MAX_VALUE = 1024

MODE_LRU = "lru"
MODE_CLOCK = "clock"
MODES = (MODE_LRU, MODE_CLOCK)

_STORE_MAGIC = b"KVS1"
_META_MAGIC = b"KVM1"

#: Write-behind queue item kinds.
Q_SET = 1
Q_DEL = 2


# -- primitive codec ---------------------------------------------------------

def _pack_bytes(out, blob):
    if len(blob) > 0xFFFF:
        raise WedgeError("kv codec: blob too long")
    out += len(blob).to_bytes(2, "big") + blob


def _unpack_bytes(blob, off):
    n = int.from_bytes(blob[off:off + 2], "big")
    off += 2
    return bytes(blob[off:off + n]), off + n


def _pack_u64(out, value):
    out += int(value).to_bytes(8, "big")


def _unpack_u64(blob, off):
    return int.from_bytes(blob[off:off + 8], "big"), off + 8


def _pad(out, region_len):
    if len(out) > region_len:
        raise WedgeError(
            f"kv region overflow: {len(out)} > {region_len} bytes")
    return bytes(out) + b"\x00" * (region_len - len(out))


# -- the store region --------------------------------------------------------

def empty_store():
    """The pristine store state: no cache, no queue, no backing rows."""
    return {"cache": [], "queue": [], "backing": []}


def pack_store(state, region_len):
    """Serialize ``{"cache", "queue", "backing"}`` into a padded blob.

    * cache rows are ``(key, value, expires_cycle)`` — ``expires`` of 0
      means the entry never expires;
    * queue rows are ``(Q_SET|Q_DEL, key, value)``;
    * backing rows are ``(key, value)``.
    """
    out = bytearray(_STORE_MAGIC)
    out += len(state["cache"]).to_bytes(2, "big")
    for key, value, expires in state["cache"]:
        _pack_bytes(out, key)
        _pack_bytes(out, value)
        _pack_u64(out, expires)
    out += len(state["queue"]).to_bytes(2, "big")
    for kind, key, value in state["queue"]:
        out.append(kind)
        _pack_bytes(out, key)
        _pack_bytes(out, value)
    out += len(state["backing"]).to_bytes(2, "big")
    for key, value in state["backing"]:
        _pack_bytes(out, key)
        _pack_bytes(out, value)
    return _pad(out, region_len)


def unpack_store(blob):
    blob = bytes(blob)
    if blob[:4] != _STORE_MAGIC:
        raise WedgeError("kv-store region is corrupt (bad magic)")
    off = 4
    state = empty_store()
    n = int.from_bytes(blob[off:off + 2], "big")
    off += 2
    for _ in range(n):
        key, off = _unpack_bytes(blob, off)
        value, off = _unpack_bytes(blob, off)
        expires, off = _unpack_u64(blob, off)
        state["cache"].append((key, value, expires))
    n = int.from_bytes(blob[off:off + 2], "big")
    off += 2
    for _ in range(n):
        kind = blob[off]
        off += 1
        key, off = _unpack_bytes(blob, off)
        value, off = _unpack_bytes(blob, off)
        state["queue"].append((kind, key, value))
    n = int.from_bytes(blob[off:off + 2], "big")
    off += 2
    for _ in range(n):
        key, off = _unpack_bytes(blob, off)
        value, off = _unpack_bytes(blob, off)
        state["backing"].append((key, value))
    return state


# -- the metadata region -----------------------------------------------------

def empty_meta(mode=MODE_LRU):
    """Pristine recency state.

    * ``lru``: ``entries`` maps key -> last-touch stamp, ``counter`` is
      the next stamp (a logical clock — deterministic, unlike wall
      time);
    * ``clock``: ``entries`` maps key -> reference bit, ``order`` is the
      ring and ``hand`` the sweep position.
    """
    if mode not in MODES:
        raise WedgeError(f"unknown eviction mode {mode!r}")
    return {"mode": mode, "counter": 0, "hand": 0,
            "order": [], "entries": {}}


def pack_meta(state, region_len):
    out = bytearray(_META_MAGIC)
    out.append(MODES.index(state["mode"]))
    _pack_u64(out, state["counter"])
    _pack_u64(out, state["hand"])
    out += len(state["order"]).to_bytes(2, "big")
    for key in state["order"]:
        _pack_bytes(out, key)
        _pack_u64(out, state["entries"][key])
    return _pad(out, region_len)


def unpack_meta(blob):
    blob = bytes(blob)
    if blob[:4] != _META_MAGIC:
        raise WedgeError("kv-meta region is corrupt (bad magic)")
    off = 4
    mode = MODES[blob[off]]
    off += 1
    counter, off = _unpack_u64(blob, off)
    hand, off = _unpack_u64(blob, off)
    n = int.from_bytes(blob[off:off + 2], "big")
    off += 2
    order = []
    entries = {}
    for _ in range(n):
        key, off = _unpack_bytes(blob, off)
        stamp, off = _unpack_u64(blob, off)
        order.append(key)
        entries[key] = stamp
    return {"mode": mode, "counter": counter, "hand": hand,
            "order": order, "entries": entries}


# -- the eviction algebra (shared with the property-test oracle) -------------

def meta_admit(state, key):
    """A new cache entry: start tracking its recency."""
    if key in state["entries"]:
        return meta_touch(state, key)
    state["order"].append(key)
    if state["mode"] == MODE_LRU:
        state["entries"][key] = state["counter"]
        state["counter"] += 1
    else:
        state["entries"][key] = 1      # clock: admitted referenced


def meta_touch(state, key):
    """A cache hit: refresh the entry's recency."""
    if key not in state["entries"]:
        return meta_admit(state, key)
    if state["mode"] == MODE_LRU:
        state["entries"][key] = state["counter"]
        state["counter"] += 1
    else:
        state["entries"][key] = 1


def meta_remove(state, key):
    """The entry left the cache (deleted or evicted)."""
    if key not in state["entries"]:
        return
    index = state["order"].index(key)
    state["order"].pop(index)
    del state["entries"][key]
    if state["mode"] == MODE_CLOCK:
        # keep the hand pointing at the same survivor
        if index < state["hand"]:
            state["hand"] -= 1
        if state["order"]:
            state["hand"] %= len(state["order"])
        else:
            state["hand"] = 0


def meta_pick(state):
    """Choose the victim; ``None`` when nothing is tracked.

    LRU picks the smallest stamp.  Clock sweeps from the hand, clearing
    reference bits until it finds a cold entry; the hand parks just past
    the victim's slot.  Neither removes the victim — the storage engine
    confirms the eviction with an explicit ``remove``.
    """
    if not state["order"]:
        return None
    if state["mode"] == MODE_LRU:
        return min(state["order"], key=lambda k: state["entries"][k])
    while True:
        key = state["order"][state["hand"] % len(state["order"])]
        if state["entries"][key]:
            state["entries"][key] = 0
            state["hand"] = (state["hand"] + 1) % len(state["order"])
        else:
            state["hand"] = (state["hand"] + 1) % len(state["order"])
            return key


def meta_reset(state):
    """Forget everything (the store was flushed)."""
    state["order"] = []
    state["entries"] = {}
    state["counter"] = 0
    state["hand"] = 0


class EvictionOracle:
    """The reference model the property tests drive in lockstep."""

    def __init__(self, mode=MODE_LRU):
        self.state = empty_meta(mode)

    def admit(self, key):
        meta_admit(self.state, key)

    def touch(self, key):
        meta_touch(self.state, key)

    def remove(self, key):
        meta_remove(self.state, key)

    def pick(self):
        return meta_pick(self.state)

    def reset(self):
        meta_reset(self.state)
