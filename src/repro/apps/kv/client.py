"""Clients for the kv tier.

:class:`KvClient` speaks the pipelined line protocol over a kernel
socket: one connection carries a batch of command lines terminated by
``QUIT``, and the whole reply stream comes back before the server
half-closes.  A full write-behind queue surfaces as the typed
:class:`~repro.core.errors.ConnectionShed` — the same error a shed
connect raises — so callers have exactly one backpressure signal to
handle.

:class:`KvCacheClient` is the cache-aside adapter httpd mounts: keyed
on the request path, seeded TTL jitter (a pure function of path and
seed — no RNG state is consumed, which keeps the scheduler
differential tests byte-identical), and fail-open on every kv outage:
a cache that is down is a cache that misses.
"""

from __future__ import annotations

import zlib

from repro.core.errors import ConnectionShed, NetworkError, WedgeError

#: Replies that signal typed backpressure from the storage engine.
SHED_REPLY = b"SHED"


class KvClient:
    """Pipelined protocol client over an existing kernel."""

    def __init__(self, kernel, addr, *, timeout=10.0):
        self.kernel = kernel
        self.addr = addr
        self.timeout = timeout

    def execute(self, commands):
        """Run a batch of command lines; returns the reply lines.

        Opens one connection, sends every command plus ``QUIT``, and
        reads until the server's half-close.  A shed connect propagates
        as :class:`~repro.core.errors.ConnectionShed`.
        """
        kernel = self.kernel
        commands = [bytes(c) for c in commands]
        fd = kernel.connect(self.addr)
        try:
            blob = b"".join(c + b"\r\n" for c in commands)
            kernel.send(fd, blob + b"QUIT\r\n")
            data = bytearray()
            while not data.endswith(b"BYE\r\n"):
                try:
                    chunk = kernel.recv(fd, 4096, timeout=self.timeout)
                except NetworkError:
                    break
                if not chunk:
                    break
                data += chunk
        finally:
            try:
                kernel.close(fd)
            except WedgeError:
                pass
        lines = [line for line in bytes(data).split(b"\r\n") if line]
        if not lines or lines[-1] != b"BYE":
            raise NetworkError(
                f"kv session truncated: {len(lines)} reply lines")
        return lines[:-1]

    # -- single-command conveniences ---------------------------------------

    def _one(self, command):
        lines = self.execute([command])
        if len(lines) != 1:
            raise NetworkError(
                f"kv: expected one reply, got {len(lines)}")
        reply = lines[0]
        if reply == SHED_REPLY:
            raise ConnectionShed("kv write queue at bound (typed shed)")
        if reply.startswith(b"ERR"):
            raise WedgeError(f"kv error: {reply.decode('latin-1')}")
        return reply

    def get(self, key):
        """The cached value, or ``None`` on a miss."""
        reply = self._one(b"GET " + _key_bytes(key))
        if reply == b"MISS":
            return None
        if reply.startswith(b"VALUE "):
            return bytes.fromhex(reply[6:].decode("ascii"))
        raise WedgeError(f"kv: unexpected GET reply {reply!r}")

    def set(self, key, value, ttl=0):
        reply = self._one(b"SET %s %d %s" % (
            _key_bytes(key), int(ttl), bytes(value).hex().encode()))
        return reply == b"STORED"

    def delete(self, key):
        return self._one(b"DEL " + _key_bytes(key)) == b"DELETED"

    def cas(self, key, old, new, ttl=0):
        reply = self._one(b"CAS %s %d %s %s" % (
            _key_bytes(key), int(ttl), bytes(old).hex().encode(),
            bytes(new).hex().encode()))
        return reply == b"CASOK"

    def flush(self):
        reply = self._one(b"FLUSH")
        return int(reply.split()[1])

    def stat(self):
        reply = self._one(b"STAT")
        out = {}
        for field in reply.split()[1:]:
            name, _, value = field.partition(b"=")
            out[name.decode("ascii")] = int(value)
        return out


def _key_bytes(key):
    key = key.encode("ascii") if isinstance(key, str) else bytes(key)
    if not key or b" " in key:
        raise WedgeError(f"bad kv key {key!r}")
    return key


class KvCacheClient:
    """httpd's cache-aside adapter: path-keyed, seeded-jitter TTLs.

    Holds one *persistent* pipelined connection to the kv tier (the kv
    server must run with ``concurrent=True`` to serve several of
    these), reconnecting lazily after idle timeouts or kv restarts.
    The two-sthread connection setup on the kv side is thus paid once
    per httpd replica, not once per request — that is what puts a
    cache hit well under the cost of rendering dynamic content.
    """

    def __init__(self, kernel, addr, *, ttl_base=5_000_000,
                 ttl_jitter=1_000_000, seed=0, timeout=10.0):
        self.kernel = kernel
        self.addr = addr
        self.timeout = timeout
        self._fd = None
        self._buf = bytearray()
        self.ttl_base = int(ttl_base)
        self.ttl_jitter = int(ttl_jitter)
        self.seed = int(seed)
        self.hits = 0
        self.misses = 0
        self.store_errors = 0

    def ttl_for(self, path):
        """Base TTL plus deterministic per-path jitter.

        Jitter decorrelates expiry so a cold restart does not stampede
        every path at once; deriving it from crc32(path, seed) keeps it
        a pure function — reruns and scheduler differentials see the
        same TTLs.
        """
        if not self.ttl_jitter:
            return self.ttl_base
        spread = zlib.crc32(_key_bytes(path), self.seed)
        return self.ttl_base + spread % self.ttl_jitter

    # -- the persistent pipelined connection -------------------------------

    def _drop(self):
        if self._fd is not None:
            try:
                self.kernel.close(self._fd)
            except WedgeError:
                pass
            self._fd = None
        self._buf = bytearray()

    def close(self):
        self._drop()

    def _readline(self):
        while b"\r\n" not in self._buf:
            chunk = self.kernel.recv(self._fd, 4096,
                                     timeout=self.timeout)
            if not chunk:
                raise NetworkError("kv connection closed mid-reply")
            self._buf += chunk
        line, _, rest = bytes(self._buf).partition(b"\r\n")
        self._buf = bytearray(rest)
        return line

    def _command(self, line):
        """One command, one reply line; reconnects once on failure.

        The kv parser times its idle connections out, so the first
        command after a quiet spell legitimately finds a dead socket —
        retrying on a fresh connection is part of the protocol, not
        error recovery.  (All kv commands are idempotent to retry.)
        """
        for attempt in (0, 1):
            try:
                if self._fd is None:
                    self._fd = self.kernel.connect(self.addr)
                    self._buf = bytearray()
                self.kernel.send(self._fd, line + b"\r\n")
                return self._readline()
            except NetworkError:
                self._drop()
                if attempt:
                    raise
        return None    # unreachable

    # -- the cache-aside surface -------------------------------------------

    def lookup(self, path):
        """The cached response, or ``None``; outages are misses."""
        try:
            reply = self._command(b"GET " + _key_bytes(path))
        except WedgeError:
            reply = None
        value = None
        if reply is not None and reply.startswith(b"VALUE "):
            try:
                value = bytes.fromhex(reply[6:].decode("ascii"))
            except ValueError:
                value = None
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def store(self, path, value):
        """Best-effort fill; a shed or dead cache drops the write."""
        try:
            reply = self._command(b"SET %s %d %s" % (
                _key_bytes(path), self.ttl_for(path),
                bytes(value).hex().encode()))
        except WedgeError:
            reply = None
        if reply != b"STORED":
            self.store_errors += 1
