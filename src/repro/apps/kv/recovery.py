"""The ``python -m repro recovery`` campaign: kill at *every* syscall.

The durability contract the kv tier signs (DESIGN.md §8):

* **prefix consistency** — after a power loss at any instant, the
  recovered store equals the state after some *prefix* of the logged
  mutation stream: ``refs[j]`` for a single ``j``, never a mix;
* **barrier floor** — every mutation covered by a completed ``fsync``
  barrier survives: ``j >= synced``;
* **no torn record** — a partially-written log record is never applied
  (``j <= attempted``; the tail either replays whole or stops the scan
  at its CRC).

The campaign proves it exhaustively rather than by spot-check.  A probe
run counts the server kernel's total syscall trap count ``N`` for a
fixed seeded workload; then, for every index ``k`` in ``1..N``, a fresh
server runs the same workload with a syscall tap that fires a seeded
:meth:`~repro.core.kernel.Kernel.kill` (``power_loss=True`` — the disk
keeps an arbitrary per-sector prefix of its unflushed writes) at trap
``k``.  A recovery server mounts the surviving platter and its logical
store must match the reference chain inside ``[synced, attempted]``.
Crashes land inside appends, inside barriers, between the two
checkpoint flips, inside the virgin format, even inside recovery's own
mount — every index is a test case.

Two gated metrics ride along for ``BENCH_recovery.json``:
``recovery_ckpt_cycles`` (mount cost after the workload with periodic
checkpoints) and ``recovery_nockpt_cycles`` (the ablation: no
checkpoints, full-log replay) — both deterministic model cycles, so the
CI smoke gate's 10% tolerance is pure insurance.
"""

from __future__ import annotations

import random
import time

from repro.apps.kv import store
from repro.apps.kv.client import KvClient
from repro.apps.kv.server import (DEFAULT_STORE_REGION, WRITE_THROUGH,
                                  KvServer)
from repro.apps.kv.wal import WalLayout
from repro.core.errors import KernelDead, WedgeError
from repro.core.kernel import Kernel
from repro.net import Network

#: Mutations per workload: every one appends exactly one WAL record.
DEFAULT_OPS = 24
#: Commands pipelined per client connection.
DEFAULT_BATCH = 6
#: Barrier every N records (small, so the sweep crosses many barriers).
DEFAULT_GROUP_COMMIT = 4
#: Snapshot checkpoint every N records.
DEFAULT_CHECKPOINT_EVERY = 8

#: seed-mixing constants: the script draw and each kill's tear draw are
#: independent of each other and of every other seeded subsystem
_SCRIPT_SALT = 0x52435652      # "RCVR"
_KILL_MIX = 0x9E3779B1


def _mix(seed, k):
    return (int(seed) * _KILL_MIX + k * 0x85EBCA77) & 0x7FFFFFFF


def build_script(seed, ops=DEFAULT_OPS):
    """The seeded workload and its reference chain.

    Returns ``(lines, refs)``: *lines* are wire commands, every one a
    mutation the storage gate logs (SETs, always-successful CASes,
    DELs of live keys), and ``refs[j]`` is the logical key->value map
    after the first ``j`` of them — the oracle the sweep compares
    recovered stores against.  TTLs are all zero and the key space is
    far below the cache capacity, so replay has no expiry or eviction
    ambiguity: the logical map is a pure function of the prefix.
    """
    rng = random.Random((int(seed) << 1) ^ _SCRIPT_SALT)
    model = {}
    lines = []
    refs = [dict(model)]
    for _ in range(int(ops)):
        draw = rng.random()
        keys = sorted(model)
        if draw < 0.55 or not keys:
            key = b"key%02d" % rng.randrange(10)
            value = bytes(rng.randrange(256) for _ in range(6))
            lines.append(b"SET %s 0 %s" % (key, value.hex().encode()))
            model[key] = value
        elif draw < 0.78:
            key = keys[rng.randrange(len(keys))]
            value = bytes(rng.randrange(256) for _ in range(6))
            lines.append(b"CAS %s 0 %s %s" % (
                key, model[key].hex().encode(), value.hex().encode()))
            model[key] = value
        else:
            key = keys[rng.randrange(len(keys))]
            lines.append(b"DEL " + key)
            del model[key]
        refs.append(dict(model))
    return lines, refs


def _server(network, addr, disk, *, tap=None,
            group_commit=DEFAULT_GROUP_COMMIT,
            checkpoint_every=DEFAULT_CHECKPOINT_EVERY):
    return KvServer(network, addr, policy=WRITE_THROUGH, durable=True,
                    disk=disk, group_commit=group_commit,
                    checkpoint_every=checkpoint_every, tap=tap,
                    name="kv-rcvr").start()


def _drive(network, addr, lines, batch):
    """Run the workload; a dead server ends the session, not the test."""
    kernel = Kernel(net=network, name="rcvr-client")
    kernel.start_main()
    client = KvClient(kernel, addr, timeout=5.0)
    try:
        for i in range(0, len(lines), batch):
            try:
                client.execute(lines[i:i + batch])
            except WedgeError:
                return
    finally:
        kernel.kill()


def _logical(server):
    """Recovered store bytes -> (backing map, cache map)."""
    state = store.unpack_store(server.store_bytes())
    backing = {key: value for key, value in state["backing"]}
    cache = {key: value for key, value, _exp in state["cache"]}
    return backing, cache


def _fresh_disk():
    return WalLayout(DEFAULT_STORE_REGION).disk(name="rcvr-disk")


def _shutdown(server):
    if server is None:
        return
    try:
        server.stop()
    except WedgeError:
        pass
    if server.kernel.alive:
        server.kernel.kill()


class RecoveryReport:
    """What the sweep proved and what recovery costs."""

    def __init__(self, *, seed, ops):
        self.seed = seed
        self.ops = ops
        self.syscalls = 0
        self.kills = 0
        self.stride = 1
        self.metrics = {}
        self.info = {}
        self.wall = {}
        self.violations = []

    @property
    def passed(self):
        return not self.violations

    def artifact(self):
        """The ``BENCH_recovery.json`` payload (overload-checker rails)."""
        info = dict(self.info)
        info.update({"ops": self.ops, "seed": self.seed,
                     "syscalls": self.syscalls, "kills": self.kills,
                     "stride": self.stride, "passed": self.passed})
        return {"artifact": "recovery", "metrics": dict(self.metrics),
                "wall": dict(self.wall), "info": info}

    def format(self):
        lines = [f"recovery ops={self.ops} seed={self.seed}: "
                 f"{'PASS' if self.passed else 'FAIL'}"]
        if "recovery_ckpt_cycles" in self.metrics:
            lines.append(
                f"  mount: {self.metrics['recovery_ckpt_cycles']:,d} "
                f"cycles with checkpoints "
                f"(replayed {self.info.get('replayed_ckpt')}), "
                f"{self.metrics['recovery_nockpt_cycles']:,d} without "
                f"(replayed {self.info.get('replayed_nockpt')})")
        lines.append(
            f"  sweep: {self.kills} power-loss kills over "
            f"{self.syscalls} syscall indices (stride {self.stride}); "
            f"every recovered store was a consistent logged prefix")
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


# -- the legs -----------------------------------------------------------------

def _measure_leg(report, lines, refs, *, batch):
    """Price a mount, with and without checkpoints (the ablation)."""
    start = time.perf_counter()
    for label, ckpt_every in (("ckpt", DEFAULT_CHECKPOINT_EVERY),
                              ("nockpt", 0)):
        network = Network()
        disk = _fresh_disk()
        server = _server(network, "rcvr-m:9090", disk,
                         checkpoint_every=ckpt_every)
        _drive(network, "rcvr-m:9090", lines, batch)
        server.wal.sync()           # clean shutdown: barrier the tail
        records = server.wal.appended
        _shutdown(server)
        recovered = _server(network, "rcvr-m:9091", disk,
                            checkpoint_every=ckpt_every)
        backing, cache = _logical(recovered)
        if backing != refs[records] or cache != refs[records]:
            report.violations.append(
                f"measure[{label}]: clean-shutdown mount does not "
                f"match the full logged prefix")
        report.metrics[f"recovery_{label}_cycles"] = \
            recovered.recovery_cycles
        report.info[f"replayed_{label}"] = \
            recovered.last_recovery["replayed"]
        _shutdown(recovered)
    report.info["records"] = len(lines)
    report.wall["measure_seconds"] = round(time.perf_counter() - start, 4)


def _probe_syscalls(lines, *, batch):
    """Count the server kernel's trap total for one full workload."""
    count = [0]

    def tap(_kernel, _name):
        count[0] += 1

    network = Network()
    server = _server(network, "rcvr-p:9090", _fresh_disk(), tap=tap)
    _drive(network, "rcvr-p:9090", lines, batch)
    _shutdown(server)
    return count[0]


def _sweep_once(seed, k, lines, refs, *, batch):
    """One kill-at-index-k iteration; returns an error string or None."""
    network = Network()
    disk = _fresh_disk()
    count = [0]

    def tap(kernel, _name):
        count[0] += 1
        if count[0] == k:
            kernel.syscall_tap = None
            kernel.kill(power_loss=True, seed=_mix(seed, k))
            raise KernelDead(
                f"recovery sweep: power loss at syscall #{k}",
                kernel=kernel.name)

    server = None
    acked_lo = acked_hi = 0
    try:
        try:
            server = _server(network, "rcvr-s:9090", disk, tap=tap)
        except WedgeError:
            server = None           # died during boot: nothing acked
        if server is not None:
            _drive(network, "rcvr-s:9090", lines, batch)
            wal = server.wal
            acked_lo, acked_hi = wal.synced, wal.attempted
            if count[0] < k:
                # workload finished under the index (client gave up
                # early); the power cut lands on whatever is pending
                server.kernel.syscall_tap = None
                server.kernel.kill(power_loss=True, seed=_mix(seed, k))
    finally:
        _shutdown(server)

    recovered = None
    try:
        try:
            recovered = _server(network, "rcvr-s:9091", disk)
        except WedgeError as exc:
            return (f"k={k}: recovery mount failed: "
                    f"{type(exc).__name__}: {exc}")
        backing, cache = _logical(recovered)
        if cache != backing:
            return (f"k={k}: recovered cache diverges from backing "
                    f"(torn state surfaced)")
        hi = min(acked_hi, len(refs) - 1)
        window = range(acked_lo, hi + 1)
        if not any(refs[j] == backing for j in window):
            return (f"k={k}: recovered store matches no logged prefix "
                    f"in [{acked_lo}, {hi}] "
                    f"({len(backing)} keys recovered)")
    finally:
        _shutdown(recovered)
    return None


def _sweep_leg(report, lines, refs, *, stride, batch):
    start = time.perf_counter()
    total = _probe_syscalls(lines, batch=batch)
    report.syscalls = total
    report.stride = stride
    for k in range(1, total + 1, stride):
        report.kills += 1
        error = _sweep_once(report.seed, k, lines, refs, batch=batch)
        if error is not None:
            report.violations.append(error)
            if len(report.violations) >= 5:
                report.violations.append(
                    "sweep aborted after 5 violations")
                break
    report.wall["sweep_seconds"] = round(time.perf_counter() - start, 4)


def run_recovery(*, seed=0, ops=DEFAULT_OPS, stride=1,
                 batch=DEFAULT_BATCH):
    """Run the recovery campaign; returns a :class:`RecoveryReport`."""
    report = RecoveryReport(seed=seed, ops=ops)
    lines, refs = build_script(seed, ops)
    try:
        _measure_leg(report, lines, refs, batch=batch)
        _sweep_leg(report, lines, refs, stride=max(1, int(stride)),
                   batch=batch)
    except WedgeError as exc:
        report.violations.append(f"campaign aborted: {exc}")
    return report
