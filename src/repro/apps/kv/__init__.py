"""The Wedge-partitioned key-value/cache tier (ROADMAP item 3a)."""

from repro.apps.kv.client import KvCacheClient, KvClient
from repro.apps.kv.server import (CACHE_ASIDE, POLICIES, WRITE_BEHIND,
                                  WRITE_THROUGH, KvServer, MonolithicKv,
                                  analysis_compartments)
from repro.apps.kv.store import MODE_CLOCK, MODE_LRU, EvictionOracle
from repro.apps.kv.wal import WalLayout, WriteAheadLog, default_disk

__all__ = [
    "CACHE_ASIDE", "WRITE_THROUGH", "WRITE_BEHIND", "POLICIES",
    "MODE_LRU", "MODE_CLOCK", "EvictionOracle",
    "KvServer", "MonolithicKv", "KvClient", "KvCacheClient",
    "WalLayout", "WriteAheadLog", "default_disk",
    "analysis_compartments",
]
