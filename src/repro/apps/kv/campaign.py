"""The ``python -m repro kv`` campaign: price the cache tier.

Three legs, all deterministic in model cycles (so the committed
``BENCH_kv.json`` baseline is exact, and the CI gate's 10% headroom is
pure insurance):

**Ops** — a persistent pipelined connection against a warm
:class:`~repro.apps.kv.server.KvServer`; every op is priced on the
*server* kernel's deterministic cost model.  The numbers tell the
architecture story: a hit costs two recycled-callgate hops (futex round
trips) plus the region I/O — far below one ``sthread_create``.

**httpd** — the acceptance comparison.  A cluster of httpd kernels
serves the same dynamic (CGI) request mix twice, once bare and once in
front of a kv kernel (``cache=True``); the cached pass is billed for
*both* the httpd kernels and the kv kernel.  The contract: steady-state
``httpd_cached_cycles`` must beat ``httpd_uncached_cycles`` — otherwise
the tier is decoration.

**Write-behind** — a burst of ``queue_bound + extra`` SETs against a
write-behind store.  Exactly ``extra`` of them must shed (the typed
``SHED`` reply, the PR-5 backpressure discipline), and a ``FLUSH`` must
drain the queue to the backing store.

The artifact rides the overload-checker rails: ``*_cycles`` metrics
regress when they rise beyond tolerance, ``*_shed_rate`` when it rises,
``*_goodput`` when it falls.
"""

from __future__ import annotations

import time

from repro.apps.kv.client import KvCacheClient, KvClient
from repro.apps.kv.server import WRITE_BEHIND, KvServer
from repro.core.errors import WedgeError
from repro.core.kernel import Kernel
from repro.net import Network

#: Distinct keys/paths per leg.
DEFAULT_OPS = 8
#: Write-behind burst beyond the queue bound.
DEFAULT_EXTRA = 4


class KvReport:
    """What the campaign measured and whether the contract held."""

    def __init__(self, *, ops, seed):
        self.ops = ops
        self.seed = seed
        self.hit_cycles = None
        self.miss_cycles = None
        self.set_cycles = None
        self.connect_cycles = None
        self.uncached_cycles = None
        self.cached_cycles = None
        self.cached_kv_share = None
        self.kv_stats = {}
        self.shed = None
        self.shed_expected = None
        self.flushed = None
        self.queue_bound = None
        self.wall = {}
        self.violations = []

    @property
    def passed(self):
        return not self.violations

    def artifact(self):
        """The ``BENCH_kv.json`` payload (overload-checker rails)."""
        metrics = {}
        if self.hit_cycles is not None:
            metrics["kv_hit_cycles"] = self.hit_cycles
            metrics["kv_miss_cycles"] = self.miss_cycles
            metrics["kv_set_cycles"] = self.set_cycles
        if self.cached_cycles is not None:
            metrics["httpd_uncached_cycles"] = self.uncached_cycles
            metrics["httpd_cached_cycles"] = self.cached_cycles
        if self.shed is not None:
            total = self.shed_expected + self.queue_bound
            metrics["wb_shed_rate"] = round(self.shed / total, 4)
        info = {
            "ops": self.ops,
            "seed": self.seed,
            "connect_cycles": self.connect_cycles,
            "cached_kv_share": self.cached_kv_share,
            "kv_stats": self.kv_stats,
            "write_behind": {"queue_bound": self.queue_bound,
                             "shed": self.shed,
                             "expected_shed": self.shed_expected,
                             "flushed": self.flushed},
            "passed": self.passed,
        }
        return {"artifact": "kv", "metrics": metrics,
                "wall": self.wall, "info": info}

    def format(self):
        lines = [f"kv ops={self.ops} seed={self.seed}: "
                 f"{'PASS' if self.passed else 'FAIL'}"]
        if self.hit_cycles is not None:
            lines.append(
                f"  ops: hit {self.hit_cycles:,d} / miss "
                f"{self.miss_cycles:,d} / set {self.set_cycles:,d} "
                f"model cycles each (connection setup "
                f"{self.connect_cycles:,d}, amortised)")
        if self.cached_cycles is not None:
            saved = self.uncached_cycles - self.cached_cycles
            lines.append(
                f"  httpd: uncached dynamic {self.uncached_cycles:,d} "
                f"-> cached-via-kv {self.cached_cycles:,d} "
                f"cycles/request ({saved:,d} saved, kv kernel share "
                f"{self.cached_kv_share:.0%})")
        if self.shed is not None:
            lines.append(
                f"  write-behind: {self.shed}/{self.shed_expected} "
                f"expected sheds at bound {self.queue_bound}, "
                f"{self.flushed} flushed to backing")
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


# -- the legs -----------------------------------------------------------------


def _ops_leg(report):
    """Price hit / miss / set on a warm persistent connection."""
    start = time.perf_counter()
    network = Network()
    server = KvServer(network, "bench-kv:9090", concurrent=True).start()
    kernel = Kernel(net=network, name="bench-kv-client")
    kernel.start_main()
    client = KvCacheClient(kernel, "bench-kv:9090", seed=report.seed)
    paths = [f"/page{i:03d}" for i in range(report.ops)]
    cycles = server.kernel.costs.cycles
    try:
        before = cycles()
        client.lookup(paths[0])     # dials: 2 sthreads, paid once
        report.connect_cycles = cycles() - before

        before = cycles()
        for path in paths:
            client.lookup(path)
        report.miss_cycles = (cycles() - before) // report.ops

        before = cycles()
        for path in paths:
            client.store(path, path.encode() * 8)
        report.set_cycles = (cycles() - before) // report.ops

        before = cycles()
        for path in paths:
            client.lookup(path)
        report.hit_cycles = (cycles() - before) // report.ops
        if client.hits != report.ops:
            report.violations.append(
                f"ops leg: {client.hits}/{report.ops} hits after fill")
        if report.hit_cycles >= report.miss_cycles + report.set_cycles:
            report.violations.append(
                "a cache hit costs more than the miss+fill it avoids")
    finally:
        client.close()
        server.stop()
    report.wall["ops_seconds"] = round(time.perf_counter() - start, 4)


def _httpd_leg(report):
    """The acceptance comparison: cached-via-kv vs uncached dynamic."""
    from repro.cluster.cluster import Cluster
    from repro.resilience.breaker import BreakerPolicy

    start = time.perf_counter()
    paths = [f"/cgi/page{i:03d}" for i in range(report.ops)]
    keys = [f"k{i:07d}".encode() for i in range(report.ops)]

    def serve(cache):
        cluster = Cluster(kernels=2, replicas=1, cache=cache,
                          breaker_policy=BreakerPolicy(cooldown=0.0),
                          probe_timeout=1.0)
        cluster.start()
        try:
            cluster.lb.health_sweep()
            kernels = [node.kernel for node in cluster.nodes]
            if cache:
                kernels.append(cluster.kv.kernel)
            # warm pass: renders (and, cached, fills the tier)
            for key, path in zip(keys, paths):
                cluster.request(key, path, resume=False)
            # measured pass: steady state
            before = [k.costs.cycles() for k in kernels]
            kv_before = (cluster.kv.kernel.costs.cycles()
                         if cache else 0)
            bodies = [cluster.request(key, path, resume=False)
                      for key, path in zip(keys, paths)]
            spent = sum(k.costs.cycles() - b
                        for k, b in zip(kernels, before))
            kv_spent = (cluster.kv.kernel.costs.cycles() - kv_before
                        if cache else 0)
            stats = dict(cluster.kv.stats) if cache else {}
        finally:
            cluster.stop()
        return spent // report.ops, kv_spent, bodies, stats

    report.uncached_cycles, _, plain, _ = serve(cache=False)
    (report.cached_cycles, kv_spent, cached,
     report.kv_stats) = serve(cache=True)
    report.cached_kv_share = round(
        kv_spent / max(1, report.cached_cycles * report.ops), 4)
    if plain != cached:
        report.violations.append(
            "cached responses deviate from the rendered bytes")
    if report.kv_stats.get("hits", 0) < report.ops:
        report.violations.append(
            f"steady-state pass was not all hits: {report.kv_stats}")
    if report.cached_cycles >= report.uncached_cycles:
        report.violations.append(
            f"cache tier does not pay for itself: cached "
            f"{report.cached_cycles:,d} >= uncached "
            f"{report.uncached_cycles:,d} cycles/request")
    report.wall["httpd_seconds"] = round(time.perf_counter() - start, 4)


def _write_behind_leg(report, *, queue_bound=4, extra=DEFAULT_EXTRA):
    """Typed shed at the queue bound, then a flush drains it."""
    start = time.perf_counter()
    network = Network()
    server = KvServer(network, "bench-wb:9090", policy=WRITE_BEHIND,
                      queue_bound=queue_bound).start()
    kernel = Kernel(net=network, name="bench-wb-client")
    kernel.start_main()
    client = KvClient(kernel, "bench-wb:9090")
    report.queue_bound = queue_bound
    report.shed_expected = extra
    try:
        burst = [b"SET k%03d 0 %s" % (i, b"ab" * 4)
                 for i in range(queue_bound + extra)]
        replies = client.execute(burst)
        report.shed = sum(1 for r in replies if r == b"SHED")
        report.flushed = client.flush()
        if report.shed != extra:
            report.violations.append(
                f"write-behind shed {report.shed} of the burst, "
                f"expected exactly {extra}")
        if report.flushed != queue_bound:
            report.violations.append(
                f"flush drained {report.flushed} queued writes, "
                f"expected {queue_bound}")
    finally:
        server.stop()
    report.wall["wb_seconds"] = round(time.perf_counter() - start, 4)


def run_kv(*, ops=DEFAULT_OPS, seed=0, httpd=True):
    """Run the kv campaign; returns a :class:`KvReport`."""
    report = KvReport(ops=ops, seed=seed)
    try:
        _ops_leg(report)
        if httpd:
            _httpd_leg(report)
        _write_behind_leg(report)
    except WedgeError as exc:
        report.violations.append(f"campaign aborted: {exc}")
    return report
