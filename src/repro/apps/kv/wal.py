"""Write-ahead log + snapshot checkpoints for the kv storage engine.

ARIES in miniature, sized for honesty over generality:

* every mutation the storage gate applies (SET/DEL/CAS, a write-behind
  FLUSH, a lazy-expiry purge) appends one CRC-framed redo record to a
  log region on a :class:`~repro.disk.SimDisk`, *before* the reply
  leaves the gate;
* ``fsync`` barriers are **group-committed**: one barrier per
  *group_commit* records, so the amortised durability cost is a
  fraction of a barrier per op (the trade: ops after the last barrier
  may be lost in a power cut — the recovery invariant promises only
  barrier-acknowledged writes);
* every *checkpoint_every* mutations (or under log-space pressure) the
  gate snapshots its whole packed store into the *inactive* checkpoint
  slot, barriers, then atomically flips the single-sector superblock at
  the new slot + an empty log — double-buffered, so a crash at any
  sector leaves one fully consistent checkpoint reachable;
* recovery loads the active checkpoint and replays the log, stopping
  cleanly at the first record that fails its CRC, breaks the sequence
  chain, belongs to a stale epoch, or time-travels to an earlier mount.

The mount counter closes the classic torn-tail trap: after a recovery,
new records overwrite the dead tail, and a *stale but intact* record
from the previous incarnation could otherwise line up exactly where the
new tail ends.  Records stamp the superblock's mount count, the count
bumps (durably) on every recovery, and replay refuses a record whose
mount is lower than its predecessor's.

Everything here runs *inside* the storage callgate — the only
compartment whose SecurityContext holds the disk fd.  The parser,
eviction and writer islands cannot name the platter, and
``repro lint --app kv --strict`` proves it.
"""

from __future__ import annotations

import struct
import zlib

from repro.core.errors import WedgeError
from repro.disk import SECTOR_SIZE, SimDisk
from repro.observe import events as ev

SB_MAGIC = b"KVWL"
CKPT_MAGIC = b"KVCP"
REC_MAGIC = 0xA5
VERSION = 1

#: superblock: magic4 ver1 slot1 pad2 epoch8 log_start8 mount8 + crc4
_SB_FMT = "<4sBBHQQQ"
_SB_BYTES = struct.calcsize(_SB_FMT) + 4
#: checkpoint slot header: magic4 epoch8 length4 + crc4 (crc of payload)
_CKPT_FMT = "<4sQL"
CKPT_HDR = struct.calcsize(_CKPT_FMT) + 4
#: record header: magic1 len2 mount4 epoch4 seq4 + crc4
_REC_FMT = "<BHLLL"
REC_HDR = struct.calcsize(_REC_FMT) + 4

#: generous upper bound on one encoded record (key+value+old maxed out)
REC_HEADROOM = 4096

#: op kind <-> wire tag.  Only ops that can dirty the store are logged.
_KIND_TAGS = {"set": 1, "delete": 2, "cas": 3, "flush": 4, "get": 5}
_TAG_KINDS = {tag: kind for kind, tag in _KIND_TAGS.items()}


class WalError(WedgeError):
    """The log or checkpoint region is unusable (not a crash artefact)."""


# -- op payload codec (pure; property-tested) --------------------------------

def encode_op(op, now):
    """One parsed kv op + its model-cycle clock -> record payload."""
    kind = op["op"]
    tag = _KIND_TAGS.get(kind)
    if tag is None:
        raise WalError(f"op kind {kind!r} is not loggable")
    flags = 0
    blobs = []
    for bit, field in enumerate(("key", "value", "old")):
        blob = op.get(field)
        if blob is not None:
            flags |= 1 << bit
            blobs.append(struct.pack("<H", len(blob)) + bytes(blob))
    out = struct.pack("<BQQB", tag, int(now), int(op.get("ttl") or 0),
                      flags)
    return out + b"".join(blobs)


def decode_op(payload):
    """Record payload -> ``(op dict, now)``; raises WalError on garbage."""
    try:
        tag, now, ttl, flags = struct.unpack_from("<BQQB", payload, 0)
        kind = _TAG_KINDS.get(tag)
        if kind is None:
            raise WalError(f"bad op tag {tag}")
        op = {"op": kind}
        pos = struct.calcsize("<BQQB")
        for bit, field in enumerate(("key", "value", "old")):
            if flags & (1 << bit):
                (length,) = struct.unpack_from("<H", payload, pos)
                pos += 2
                blob = payload[pos:pos + length]
                if len(blob) != length:
                    raise WalError("truncated op blob")
                op[field] = bytes(blob)
                pos += length
        if kind in ("set", "cas"):
            op["ttl"] = ttl
        return op, now
    except struct.error as exc:
        raise WalError(f"truncated op payload: {exc}") from exc


# -- record framing (pure; property-tested) ----------------------------------

def encode_record(payload, *, mount, epoch, seq):
    """Frame one payload: magic, length, mount/epoch/seq, CRC."""
    head = struct.pack(_REC_FMT, REC_MAGIC, len(payload), mount, epoch,
                       seq)
    crc = zlib.crc32(head + payload) & 0xFFFFFFFF
    return head + struct.pack("<L", crc) + payload


def decode_record(data, offset):
    """Decode the record at *offset* in *data*.

    Returns ``(payload, mount, epoch, seq, next_offset)`` or ``None``
    when no intact record starts here (bad magic, short frame, CRC
    mismatch) — the clean stop every torn tail decodes to.
    """
    hdr_end = offset + struct.calcsize(_REC_FMT)
    if hdr_end + 4 > len(data):
        return None
    magic, length, mount, epoch, seq = struct.unpack_from(
        _REC_FMT, data, offset)
    if magic != REC_MAGIC:
        return None
    (crc,) = struct.unpack_from("<L", data, hdr_end)
    start = hdr_end + 4
    end = start + length
    if end > len(data):
        return None
    payload = bytes(data[start:end])
    if zlib.crc32(data[offset:hdr_end] + payload) & 0xFFFFFFFF != crc:
        return None
    return payload, mount, epoch, seq, end


def scan_log(data, *, epoch, max_mount, base=0):
    """Replay-scan a log image from *base*.

    Applies the full acceptance chain — intact CRC frame, epoch match,
    mount monotonically non-decreasing (and never beyond *max_mount*),
    seq exactly one past its predecessor — and stops cleanly at the
    first record that fails any of it.  Returns
    ``(records, end_offset, stop)`` where *records* is a list of
    ``(payload, mount, seq)`` and *stop* names the reason scanning
    ended (``"torn"``, ``"epoch"``, ``"mount"``, ``"seq"``, ``"end"``).
    """
    records = []
    pos = base
    last_mount = 0
    last_seq = 0
    while True:
        hit = decode_record(data, pos)
        if hit is None:
            return records, pos, "torn" if pos < len(data) else "end"
        payload, mount, rec_epoch, seq, nxt = hit
        if rec_epoch != epoch:
            return records, pos, "epoch"
        if mount < last_mount or mount > max_mount:
            return records, pos, "mount"
        if seq != last_seq + 1:
            return records, pos, "seq"
        records.append((payload, mount, seq))
        last_mount, last_seq = mount, seq
        pos = nxt


# -- on-disk layout ----------------------------------------------------------

class WalLayout:
    """Byte offsets of superblock, checkpoint slots and log region."""

    def __init__(self, store_len, *, sector=SECTOR_SIZE,
                 log_bytes=None):
        def align(n):
            return (n + sector - 1) // sector * sector
        if _SB_BYTES > sector:
            raise WalError("superblock must fit one sector (atomicity)")
        self.sector = sector
        self.store_len = int(store_len)
        self.sb_off = 0
        self.slot_bytes = align(CKPT_HDR + self.store_len)
        self.slot_offs = (sector, sector + self.slot_bytes)
        self.log_off = sector + 2 * self.slot_bytes
        if log_bytes is None:
            log_bytes = max(1 << 16, 2 * self.store_len)
        self.log_end = self.log_off + align(log_bytes)
        self.size = self.log_end

    def disk(self, name="kv-disk"):
        """A fresh :class:`SimDisk` sized for this layout."""
        return SimDisk(self.size, sector=self.sector, name=name)


def default_disk(store_len, name="kv-disk"):
    """The device the kv tier creates when handed none."""
    return WalLayout(store_len).disk(name)


# -- the syscall-driven manager ----------------------------------------------

class WriteAheadLog:
    """The storage gate's durability engine.

    Holds the kernel handle and the (gate-granted) disk fd; every byte
    of I/O goes through the ``sc_disk_*`` traced syscalls, so Crowbar
    sees it, the cost model prices it, and the analyzer can prove who
    can and cannot do it.
    """

    def __init__(self, kernel, fd, layout, *, group_commit=8,
                 checkpoint_every=64):
        self.kernel = kernel
        self.fd = fd
        self.layout = layout
        self.group_commit = max(1, int(group_commit))
        #: mutations between snapshot checkpoints; 0 = only under
        #: log-space pressure (the ablation configuration)
        self.checkpoint_every = int(checkpoint_every)
        # volatile positions (set by format()/recover())
        self.epoch = 0
        self.mount = 0
        self.active_slot = 0
        self.log_start = layout.log_off
        self.log_head = layout.log_off
        self.seq = 0
        # durability accounting (the campaign's acked-write oracle)
        self.attempted = 0    # records whose append was *started*
        self.appended = 0     # records whose append syscall returned
        self.synced = 0       # records covered by a completed barrier
        self.replayed = 0     # records replayed by the last recover()
        self.checkpoints = 0
        self._since_sync = 0
        self._since_ckpt = 0

    # -- superblock / checkpoint I/O ---------------------------------------

    def _write_sb(self):
        body = struct.pack(_SB_FMT, SB_MAGIC, VERSION, self.active_slot,
                           0, self.epoch, self.log_start, self.mount)
        crc = zlib.crc32(body) & 0xFFFFFFFF
        self.kernel.disk_write(self.fd, self.layout.sb_off,
                               body + struct.pack("<L", crc))

    def _read_sb(self):
        raw = self.kernel.disk_read(self.fd, self.layout.sb_off,
                                    _SB_BYTES)
        body, (crc,) = raw[:-4], struct.unpack("<L", raw[-4:])
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            return None
        magic, ver, slot, _, epoch, log_start, mount = struct.unpack(
            _SB_FMT, body)
        if magic != SB_MAGIC or ver != VERSION or slot not in (0, 1):
            return None
        return {"slot": slot, "epoch": epoch, "log_start": log_start,
                "mount": mount}

    def _write_ckpt(self, slot, payload):
        head = struct.pack(_CKPT_FMT, CKPT_MAGIC, self.epoch,
                           len(payload))
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        self.kernel.disk_write(self.fd, self.layout.slot_offs[slot],
                               head + struct.pack("<L", crc) + payload)

    def _read_ckpt(self, slot):
        off = self.layout.slot_offs[slot]
        raw = self.kernel.disk_read(self.fd, off, CKPT_HDR)
        magic, epoch, length = struct.unpack_from(_CKPT_FMT, raw, 0)
        (crc,) = struct.unpack_from("<L", raw, struct.calcsize(_CKPT_FMT))
        if magic != CKPT_MAGIC or length == 0:
            return None       # fresh device / never checkpointed
        if length > self.layout.store_len:
            raise WalError(f"checkpoint slot {slot} length {length} "
                           "exceeds the store region")
        payload = self.kernel.disk_read(self.fd, off + CKPT_HDR, length)
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            # unreachable under the crash model (the superblock only
            # flips after the slot's barrier); loud if it ever happens
            raise WalError(f"active checkpoint slot {slot} fails CRC")
        return payload

    # -- mount / recovery --------------------------------------------------

    def format(self):
        """Initialise a virgin device: empty checkpoint, empty log."""
        self.epoch = 0
        self.mount = 1
        self.active_slot = 0
        self.log_start = self.layout.log_off
        self.log_head = self.layout.log_off
        self.seq = 0
        self._write_ckpt(0, b"")
        self._write_sb()
        self.kernel.disk_fsync(self.fd)

    def recover(self):
        """Mount the device: checkpoint + intact log prefix.

        Returns ``(checkpoint_payload_or_None, [(op, now), ...])``.  A
        virgin (or unrecognisable) device is formatted and reports
        fresh.  The mount count bumps durably *before* any new append,
        closing the stale-tail-record hole.
        """
        sb = self._read_sb()
        if sb is None:
            self.format()
            self._emit_recover(fresh=True, records=0, checkpoint=False)
            return None, []
        self.epoch = sb["epoch"]
        self.active_slot = sb["slot"]
        self.log_start = sb["log_start"]
        payload = self._read_ckpt(self.active_slot)
        log = self.kernel.disk_read(
            self.fd, self.log_start,
            self.layout.log_end - self.log_start)
        records, end, _stop = scan_log(log, epoch=self.epoch,
                                       max_mount=sb["mount"])
        self.log_head = self.log_start + end
        self.seq = records[-1][2] if records else 0
        # bump the mount durably before any new record can be written
        self.mount = sb["mount"] + 1
        self._write_sb()
        self.kernel.disk_fsync(self.fd)
        ops = []
        for rec_payload, _mount, _seq in records:
            ops.append(decode_op(rec_payload))
        self.replayed = len(ops)
        self.attempted = self.appended = self.synced = len(ops)
        self._since_sync = 0
        self._since_ckpt = len(ops)
        self._emit_recover(fresh=False, records=len(ops),
                           checkpoint=payload is not None)
        return payload, ops

    def _emit_recover(self, *, fresh, records, checkpoint):
        obs = self.kernel.observe
        if obs.enabled:
            obs.emit(ev.WAL_RECOVER, comp=None, fresh=fresh,
                     records=records, checkpoint=checkpoint,
                     epoch=self.epoch, mount=self.mount)

    # -- the append path ---------------------------------------------------

    def append(self, op, now):
        """Log one mutation (redo record) at the current tail."""
        payload = encode_op(op, now)
        record = encode_record(payload, mount=self.mount,
                               epoch=self.epoch, seq=self.seq + 1)
        self.attempted += 1
        self.kernel.disk_write(self.fd, self.log_head, record)
        self.log_head += len(record)
        self.seq += 1
        self.appended += 1
        self._since_sync += 1
        self._since_ckpt += 1

    def sync(self):
        """Group-commit barrier: everything appended becomes durable."""
        if self._since_sync == 0:
            return
        self.kernel.disk_fsync(self.fd)
        self.synced = self.appended
        self._since_sync = 0

    def maybe_sync(self):
        if self._since_sync >= self.group_commit:
            self.sync()

    def checkpoint_due(self):
        """By mutation count, or because the log region is filling."""
        if self.checkpoint_every and \
                self._since_ckpt >= self.checkpoint_every:
            return True
        return self.log_head + REC_HEADROOM > self.layout.log_end

    def checkpoint(self, store_bytes):
        """Double-buffered snapshot commit; truncates the log.

        Write the packed store into the inactive slot, barrier, then
        flip the (single-sector, atomic) superblock at the new slot and
        an empty log, barrier again.  A crash between the two barriers
        recovers from whichever superblock is durable — both point at a
        checkpoint whose own barrier already completed.
        """
        target = 1 - self.active_slot
        self.epoch += 1
        self._write_ckpt(target, bytes(store_bytes))
        self.kernel.disk_fsync(self.fd)
        self.active_slot = target
        self.log_start = self.layout.log_off
        self._write_sb()
        self.kernel.disk_fsync(self.fd)
        self.log_head = self.layout.log_off
        self.seq = 0
        self.checkpoints += 1
        self.synced = self.appended
        self._since_sync = 0
        self._since_ckpt = 0
        obs = self.kernel.observe
        if obs.enabled:
            obs.emit(ev.WAL_CHECKPOINT, comp=None, epoch=self.epoch,
                     slot=target, bytes=len(store_bytes))

    # -- introspection -----------------------------------------------------

    def stats(self):
        return {"attempted": self.attempted, "appended": self.appended,
                "synced": self.synced, "replayed": self.replayed,
                "checkpoints": self.checkpoints, "epoch": self.epoch,
                "mount": self.mount,
                "log_bytes": self.log_head - self.layout.log_off}

    def __repr__(self):
        return (f"<WriteAheadLog epoch={self.epoch} mount={self.mount} "
                f"appended={self.appended} synced={self.synced} "
                f"checkpoints={self.checkpoints}>")
