"""The ``kv`` app: a Wedge-partitioned key-value/cache tier.

Three privilege islands, mirroring the balancer's discipline:

* the **parser** (one ``kv-parser`` sthread per connection) reads the
  untrusted command stream off the client socket.  It is the exploit
  surface and holds nothing: read access to the client fd plus the
  right to invoke the storage gate.  It can never map ``kv-store`` or
  ``kv-meta``, and it does not hold the eviction gate — a hijacked
  parser cannot even *reach* the recency metadata.
* the **storage engine** (the ``store_gate`` callgate) owns the cache
  entries, the bounded write-behind queue and the backing rows, all in
  the private ``kv-store`` tag.  It prices TTLs off the deterministic
  cost model (``kernel.costs.cycles()`` is the clock) and implements
  cache-aside, write-through and write-behind policies; when the
  write-behind queue is at its bound a write degrades *typed* — a
  ``SHED`` reply, the PR-5 backpressure contract — instead of growing
  without bound.
* the **eviction engine** (the standing ``evict_gate`` callgate) is the
  sole writer of the ``kv-meta`` recency tag (LRU stamps or a clock
  hand).  The storage gate reaches it by *delegation*: main creates the
  gate once and re-grants its id inside the storage gate's context
  (``sc_cgate_add(store_sc, gate_id)``), so even the storage engine
  never maps the metadata pages.

Replies flow back through a fourth, trivially-privileged island: a
``kv-writer`` sthread that pumps a reply pipe out to the client fd
(write-only).  The parser's *client* fd grant stays read-only end to
end — it streams reply lines into the pipe as it parses, so one
long-lived connection (httpd's cache-aside client keeps one open) pays
the two-sthread setup once and then costs a few syscalls plus two gate
hops per operation.  Both gates are *standing*: main creates them at
boot and delegates their ids, so no per-connection gate instantiation
(an ``mm_create`` apiece) sits on the data path.

:class:`MonolithicKv` is the contrast build: same wire protocol, but
the command parser runs in main with the store in plain heap pages —
the configuration the attack corpus proves loses the whole store to
one bad command line.
"""

from __future__ import annotations

import threading

from repro.apps.kv import store
from repro.apps.kv.wal import WalLayout, WriteAheadLog
from repro.attacks.exploit import maybe_trigger_exploit
from repro.core.errors import (CallgateError, CompartmentDown,
                               NetworkError, SthreadFaulted, WedgeError)
from repro.core.kernel import Kernel
from repro.core.memory import PROT_RW
from repro.core.policy import (FD_READ, FD_RW, FD_WRITE, SecurityContext,
                               sc_cgate_add, sc_fd_add, sc_mem_add)
from repro.net.serve import start_accept_loop

#: Cache policies (ROADMAP item 3's scalability-pattern triple).
CACHE_ASIDE = "cache-aside"
WRITE_THROUGH = "write-through"
WRITE_BEHIND = "write-behind"
POLICIES = (CACHE_ASIDE, WRITE_THROUGH, WRITE_BEHIND)

#: Region sizes (bytes) and structural bounds.
DEFAULT_STORE_REGION = 1 << 15
DEFAULT_META_REGION = 1 << 14
DEFAULT_CAPACITY = 64
DEFAULT_QUEUE_BOUND = 8

_STAT_KEYS = ("hits", "misses", "fills", "sets", "deletes", "evictions",
              "shed", "flushes")


def _new_stats():
    return {key: 0 for key in _STAT_KEYS}


# -- wire protocol -----------------------------------------------------------

def parse_command(line):
    """One command line -> (op dict, None) or (None, error bytes).

    The grammar is memcached-flavoured but hex-armoured so values never
    collide with the framing::

        GET <key> | SET <key> <ttl> <hexval> | DEL <key>
        CAS <key> <ttl> <hexold> <hexnew> | STAT | FLUSH | QUIT
    """
    parts = line.split()
    if not parts:
        return None, b"empty command"
    cmd = parts[0].upper()
    if cmd == b"STAT" and len(parts) == 1:
        return {"op": "stat"}, None
    if cmd == b"FLUSH" and len(parts) == 1:
        return {"op": "flush"}, None
    if cmd in (b"GET", b"DEL") and len(parts) == 2:
        key, err = _check_key(parts[1])
        if err:
            return None, err
        return {"op": "get" if cmd == b"GET" else "delete",
                "key": key}, None
    if cmd == b"SET" and len(parts) == 4:
        key, err = _check_key(parts[1])
        if err:
            return None, err
        ttl, value = _check_ttl(parts[2]), _check_hex(parts[3])
        if ttl is None:
            return None, b"bad ttl"
        if value is None:
            return None, b"bad value"
        return {"op": "set", "key": key, "ttl": ttl, "value": value}, None
    if cmd == b"CAS" and len(parts) == 5:
        key, err = _check_key(parts[1])
        if err:
            return None, err
        ttl = _check_ttl(parts[2])
        old, new = _check_hex(parts[3]), _check_hex(parts[4])
        if ttl is None:
            return None, b"bad ttl"
        if old is None or new is None:
            return None, b"bad value"
        return {"op": "cas", "key": key, "ttl": ttl,
                "old": old, "value": new}, None
    return None, b"unknown command"


def _check_key(token):
    if not token or len(token) > store.MAX_KEY:
        return None, b"bad key"
    return bytes(token), None


def _check_ttl(token):
    try:
        ttl = int(token)
    except ValueError:
        return None
    return ttl if ttl >= 0 else None


def _check_hex(token):
    try:
        value = bytes.fromhex(token.decode("ascii"))
    except (ValueError, UnicodeDecodeError):
        return None
    return value if len(value) <= store.MAX_VALUE else None


def format_reply(op, reply):
    """Storage-gate reply dict -> one wire line."""
    if reply.get("shed"):
        return b"SHED"
    if not reply.get("ok"):
        return b"ERR " + reply.get("error", "failed").encode()
    if op == "get":
        if reply["value"] is None:
            return b"MISS"
        return b"VALUE " + reply["value"].hex().encode()
    if op == "set":
        return b"STORED"
    if op == "delete":
        return b"DELETED" if reply["existed"] else b"NOTFOUND"
    if op == "cas":
        return b"CASOK" if reply["swapped"] else b"CASMISS"
    if op == "flush":
        return b"FLUSHED %d" % reply["flushed"]
    if op == "stat":
        fields = [b"%s=%d" % (k.encode(), reply["stats"][k])
                  for k in _STAT_KEYS]
        fields.append(b"entries=%d" % reply["entries"])
        fields.append(b"queue=%d" % reply["queue"])
        return b"STAT " + b" ".join(fields)
    return b"ERR unmapped reply"


# -- storage semantics (shared by the gate and the monolithic build) ---------

def _cache_index(state, key):
    for i, (k, _, _) in enumerate(state["cache"]):
        if k == key:
            return i
    return -1


def _backing_get(state, key):
    for k, v in state["backing"]:
        if k == key:
            return v
    return None


def _backing_set(state, key, value):
    for i, (k, _) in enumerate(state["backing"]):
        if k == key:
            state["backing"][i] = (key, value)
            return
    state["backing"].append((key, value))


def _backing_del(state, key):
    for i, (k, _) in enumerate(state["backing"]):
        if k == key:
            state["backing"].pop(i)
            return True
    return False


def _expired(entry, now):
    return entry[2] != 0 and now >= entry[2]


def _evict_to_capacity(state, evict, stats, capacity):
    """Make room for one admission; the eviction gate picks victims."""
    while len(state["cache"]) >= capacity:
        victim = evict("pick")
        keys = [k for k, _, _ in state["cache"]]
        if victim is None or victim not in keys:
            # degraded (eviction gate down or freshly restarted):
            # deterministic fallback to the oldest insertion
            victim = keys[0]
        state["cache"].pop(_cache_index(state, victim))
        evict("remove", victim)
        stats["evictions"] += 1


def apply_op(state, evict, op, *, policy, capacity, queue_bound, stats,
             now):
    """Apply one parsed command to the unpacked store state.

    Returns ``(reply dict, dirty)``; *evict* is
    ``callable(action, key=None) -> victim-or-None`` — the partitioned
    build routes it through the delegated eviction gate, the monolithic
    build calls the oracle in-process.  Degradation is typed: a full
    write-behind queue rejects the write with ``{"shed": True}`` before
    any state is touched.
    """
    kind = op["op"]
    if kind == "stat":
        return {"ok": True, "stats": dict(stats),
                "entries": len(state["cache"]),
                "queue": len(state["queue"])}, False
    if kind == "flush":
        flushed = len(state["queue"])
        for qkind, key, value in state["queue"]:
            if qkind == store.Q_SET:
                _backing_set(state, key, value)
            else:
                _backing_del(state, key)
        state["queue"] = []
        stats["flushes"] += 1
        return {"ok": True, "flushed": flushed}, flushed > 0
    key = op["key"]
    if kind == "get":
        dirty = False
        i = _cache_index(state, key)
        if i >= 0:
            entry = state["cache"][i]
            if _expired(entry, now):
                state["cache"].pop(i)
                evict("remove", key)
                dirty = True
            else:
                stats["hits"] += 1
                evict("touch", key)
                return {"ok": True, "hit": True,
                        "value": entry[1]}, dirty
        stats["misses"] += 1
        if policy != CACHE_ASIDE:
            value = _backing_get(state, key)
            if value is not None:    # read-through fill
                _evict_to_capacity(state, evict, stats, capacity)
                state["cache"].append((key, value, 0))
                evict("admit", key)
                stats["fills"] += 1
                return {"ok": True, "hit": False, "value": value}, True
        return {"ok": True, "hit": False, "value": None}, dirty
    queue_write = policy == WRITE_BEHIND and kind in ("set", "delete",
                                                      "cas")
    if kind == "set":
        if queue_write and len(state["queue"]) >= queue_bound:
            stats["shed"] += 1
            return {"ok": False, "shed": True}, False
        _store_value(state, evict, stats, key, op["value"],
                     op["ttl"], now, capacity)
        if policy == WRITE_THROUGH:
            _backing_set(state, key, op["value"])
        elif policy == WRITE_BEHIND:
            state["queue"].append((store.Q_SET, key, op["value"]))
        stats["sets"] += 1
        return {"ok": True, "stored": True}, True
    if kind == "delete":
        if queue_write and len(state["queue"]) >= queue_bound:
            stats["shed"] += 1
            return {"ok": False, "shed": True}, False
        existed = False
        i = _cache_index(state, key)
        if i >= 0:
            state["cache"].pop(i)
            evict("remove", key)
            existed = True
        if policy == WRITE_THROUGH:
            existed = _backing_del(state, key) or existed
        elif policy == WRITE_BEHIND:
            existed = existed or _backing_get(state, key) is not None
            state["queue"].append((store.Q_DEL, key, b""))
        stats["deletes"] += 1
        return {"ok": True, "existed": existed}, True
    if kind == "cas":
        current = None
        i = _cache_index(state, key)
        if i >= 0 and not _expired(state["cache"][i], now):
            current = state["cache"][i][1]
        elif policy != CACHE_ASIDE:
            current = _backing_get(state, key)
        if current is None or current != op["old"]:
            return {"ok": True, "swapped": False}, False
        if queue_write and len(state["queue"]) >= queue_bound:
            stats["shed"] += 1
            return {"ok": False, "shed": True}, False
        _store_value(state, evict, stats, key, op["value"],
                     op["ttl"], now, capacity)
        if policy == WRITE_THROUGH:
            _backing_set(state, key, op["value"])
        elif policy == WRITE_BEHIND:
            state["queue"].append((store.Q_SET, key, op["value"]))
        stats["sets"] += 1
        return {"ok": True, "swapped": True}, True
    return {"ok": False, "error": f"unknown op {kind!r}"}, False


def _store_value(state, evict, stats, key, value, ttl, now, capacity):
    expires = now + ttl if ttl else 0
    i = _cache_index(state, key)
    if i >= 0:
        state["cache"][i] = (key, value, expires)
        evict("touch", key)
    else:
        _evict_to_capacity(state, evict, stats, capacity)
        state["cache"].append((key, value, expires))
        evict("admit", key)


# -- callgate entry points ---------------------------------------------------

def evict_gate(trusted, arg):
    """The sole writer of ``kv-meta``: recency in, victims out.

    Reads the metadata region whole, applies one step of the eviction
    algebra (:mod:`repro.apps.kv.store`), writes the region whole.  The
    storage engine invokes it by delegated id — no other compartment
    ever holds write access to these pages.
    """
    kernel = trusted["kernel"]
    state = store.unpack_meta(
        kernel.mem_read(trusted["meta_addr"], trusted["meta_len"]))
    op = arg.get("op")
    key = arg.get("key")
    victim = None
    if op == "admit":
        store.meta_admit(state, key)
    elif op == "touch":
        store.meta_touch(state, key)
    elif op == "remove":
        store.meta_remove(state, key)
    elif op == "pick":
        victim = store.meta_pick(state)
    elif op == "reset":
        store.meta_reset(state)
    else:
        return {"ok": False, "error": f"unknown evict op {op!r}"}
    kernel.mem_write(trusted["meta_addr"],
                     store.pack_meta(state, trusted["meta_len"]))
    return {"ok": True, "victim": victim}


def _evict_caller(kernel):
    """The storage gate's handle on its delegated eviction gate.

    Resolution is by entry-point name over ``current().gates`` (the lb
    idiom); a dead or restarting eviction gate degrades to ``None`` —
    recency updates are then skipped and :func:`_evict_to_capacity`
    falls back to oldest-insertion, keeping the data path alive.
    """
    evict_id = None
    for gate_id in kernel.current().gates:
        if kernel.gate_record(gate_id).entry.__name__ == "evict_gate":
            evict_id = gate_id

    def call(action, key=None):
        if evict_id is None:
            return None
        try:
            reply = kernel.cgate(evict_id, None,
                                 {"op": action, "key": key})
        except (CallgateError, CompartmentDown):
            return None
        return reply.get("victim")

    return call


def store_gate(trusted, arg):
    """The storage engine: every byte of ``kv-store`` lives behind this.

    Whole-region read, python-side mutation, whole-region write (only
    when dirty — a pure cache hit leaves the store bytes untouched,
    which is what makes the chaos campaign's byte-identical check
    sharp).  TTLs are priced off the deterministic cost model: *now* is
    the kernel's model-cycle clock, so expiry is reproducible under any
    seed.

    In durable mode (``trusted["wal"]`` present) this gate is also the
    *only* compartment holding the disk fd: every dirty op appends a
    redo record before the reply leaves the gate, and the ``recover``
    op mounts the device into a fresh incarnation.  The parser, the
    eviction engine and the writer can never name the platter —
    ``repro lint --app kv --strict`` proves it.
    """
    kernel = trusted["kernel"]
    wal = trusted.get("wal")
    if wal is not None and arg.get("op") == "recover":
        return _recover_store(kernel, trusted, wal)
    state = store.unpack_store(
        kernel.mem_read(trusted["store_addr"], trusted["store_len"]))
    now = kernel.costs.cycles()
    reply, dirty = apply_op(
        state, _evict_caller(kernel), arg,
        policy=trusted["policy"], capacity=trusted["capacity"],
        queue_bound=trusted["queue_bound"], stats=trusted["stats"],
        now=now)
    if dirty:
        packed = store.pack_store(state, trusted["store_len"])
        kernel.mem_write(trusted["store_addr"], packed)
        if wal is not None:
            # log-before-reply: the record (and, at a group-commit
            # boundary, its barrier) lands before the gate returns, so
            # a reply the client saw acked is at worst group_commit-1
            # records past the last barrier — never silently ahead of
            # the log
            wal.append(arg, now)
            wal.maybe_sync()
            if wal.checkpoint_due():
                wal.checkpoint(packed)
    return reply


def _recover_store(kernel, trusted, wal):
    """Mount the device inside the storage gate (op ``recover``).

    Loads the active checkpoint, replays the intact log prefix with
    each record's *logged* clock (so TTL expiry replays bit-for-bit),
    rebuilds the recency metadata through the delegated eviction gate,
    and writes the recovered image over the store region.  A virgin
    device instead adopts the region's current contents (the preload)
    as checkpoint zero.  Runs entirely inside the gate so recovery I/O
    is covered by the same rights the analyzer certifies for live
    traffic.
    """
    payload, records = wal.recover()
    if payload is None:
        # virgin (or formatted-but-never-checkpointed) device: seal the
        # preloaded region as the first checkpoint
        wal.checkpoint(kernel.mem_read(trusted["store_addr"],
                                       trusted["store_len"]))
        return {"ok": True, "fresh": True, "replayed": 0,
                "checkpoints": wal.checkpoints}
    evict = _evict_caller(kernel)
    state = store.unpack_store(payload)
    evict("reset")
    for key, _value, _expires in state["cache"]:
        evict("admit", key)
    # replay mutates a throwaway stats dict: the server's live counters
    # describe traffic served, not crash repair
    stats = _new_stats()
    for op, logged_now in records:
        apply_op(state, evict, op, policy=trusted["policy"],
                 capacity=trusted["capacity"],
                 queue_bound=trusted["queue_bound"], stats=stats,
                 now=logged_now)
    kernel.mem_write(trusted["store_addr"],
                     store.pack_store(state, trusted["store_len"]))
    return {"ok": True, "fresh": False, "replayed": len(records),
            "checkpoints": wal.checkpoints}


# -- the partitioned server --------------------------------------------------

class KvServer:
    """Parser / storage engine / eviction engine, one island each."""

    variant = "kv"

    def __init__(self, network, addr, *, policy=CACHE_ASIDE,
                 mode=store.MODE_LRU, capacity=DEFAULT_CAPACITY,
                 queue_bound=DEFAULT_QUEUE_BOUND, preload=None,
                 supervise=None, name="kv", concurrent=False,
                 store_region=DEFAULT_STORE_REGION,
                 meta_region=DEFAULT_META_REGION, durable=False,
                 disk=None, group_commit=8, checkpoint_every=64,
                 tap=None):
        if policy not in POLICIES:
            raise WedgeError(f"unknown cache policy {policy!r}")
        self.network = network
        self.addr = addr
        self.policy = policy
        #: serve connections concurrently — required when clients keep
        #: persistent cache connections open (the httpd tier); the
        #: default stays sequential for deterministic chaos/overload
        self.concurrent = concurrent
        self.capacity = int(capacity)
        self.queue_bound = int(queue_bound)
        self.supervise = supervise
        self.kernel = Kernel(net=network, name=name)
        # installed before the first trap so a kill-at-any-point sweep
        # can crash the server at *every* syscall index, boot and
        # recovery included
        self.kernel.syscall_tap = tap
        self.main = self.kernel.start_main()
        kernel = self.kernel

        state = store.empty_store()
        meta = store.empty_meta(mode)
        for key, value in sorted((preload or {}).items()):
            key, value = bytes(key), bytes(value)
            state["cache"].append((key, value, 0))
            state["backing"].append((key, value))
            store.meta_admit(meta, key)
        self._store_tag = kernel.tag_new(store_region + 4096,
                                         name="kv-store")
        self._store_buf = kernel.alloc_buf(
            store_region, tag=self._store_tag,
            init=store.pack_store(state, store_region))
        self._meta_tag = kernel.tag_new(meta_region + 4096,
                                        name="kv-meta")
        self._meta_buf = kernel.alloc_buf(
            meta_region, tag=self._meta_tag,
            init=store.pack_meta(meta, meta_region))

        #: python-side diagnostics (the lb audit-list precedent): not
        #: part of the store bytes, not part of the chaos snapshot
        self.stats = _new_stats()
        self._store_trusted = {
            "kernel": kernel,
            "store_addr": self._store_buf.addr,
            "store_len": self._store_buf.size,
            "policy": policy,
            "capacity": self.capacity,
            "queue_bound": self.queue_bound,
            "stats": self.stats,
        }
        self._evict_trusted = {
            "kernel": kernel,
            "meta_addr": self._meta_buf.addr,
            "meta_len": self._meta_buf.size,
        }
        evict_sc = SecurityContext()
        sc_mem_add(evict_sc, self._meta_tag, PROT_RW)
        self._evict_gate = kernel.create_gate(
            evict_gate, evict_sc, self._evict_trusted,
            recycled=True, supervise=supervise)
        # the storage gate is standing too, with the eviction gate
        # *delegated by id* into its context — a callgate may re-grant
        # gates it holds but never define new ones (kernel rule), and
        # delegation keeps the metadata pages out of even this gate.
        # Both gates are *recycled* (paper §3.3): a cache op then costs
        # one futex round trip instead of a full compartment build, and
        # the trade-off the paper warns about (the persistent heap is
        # never scrubbed) is moot here because every byte of gate state
        # lives in the tagged regions, re-read whole on each entry.
        store_sc = SecurityContext()
        sc_mem_add(store_sc, self._store_tag, PROT_RW)
        sc_cgate_add(store_sc, self._evict_gate.id)
        # durable mode: the storage gate — and only the storage gate —
        # is granted the disk fd.  The write-ahead log lives in its
        # trusted arg, so every append/barrier/checkpoint happens with
        # exactly the rights the analyzer certifies.
        self.durable = bool(durable) or disk is not None
        self.disk = None
        self._disk_fd = None
        self._wal = None
        self.last_recovery = None
        self.recovery_cycles = 0
        if self.durable:
            layout = WalLayout(self._store_buf.size)
            self.disk = disk if disk is not None else layout.disk(
                name=f"{name}-disk")
            if self.disk.size < layout.size:
                raise WedgeError(
                    f"disk {self.disk.name!r} is {self.disk.size}B; the "
                    f"kv layout needs {layout.size}B")
            self._disk_fd = kernel.disk_open(self.disk)
            sc_fd_add(store_sc, self._disk_fd, FD_RW)
            self._wal = WriteAheadLog(
                kernel, self._disk_fd, layout,
                group_commit=group_commit,
                checkpoint_every=checkpoint_every)
            self._store_trusted["wal"] = self._wal
        self._store_gate = kernel.create_gate(
            store_gate, store_sc, self._store_trusted,
            recycled=True, supervise=supervise)
        if self._wal is not None:
            # mount before the listener exists: recovered disk state
            # (checkpoint + replayed log) wins over the preload
            mark = kernel.costs.checkpoint()
            self.last_recovery = kernel.cgate(
                self._store_gate.id, None, {"op": "recover"})
            self.recovery_cycles = kernel.costs.delta(mark)

        self._listen_fd = None
        self._accept_runner = None
        self._stop = threading.Event()
        self.connections_served = 0
        self.errors = []

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        if self._accept_runner is not None:
            raise WedgeError("kv already started")
        self._listen_fd = self.kernel.listen(self.addr)
        self._accept_runner = start_accept_loop(
            self.kernel, self._listen_fd, self._on_conn,
            stop=self._stop, name="kv-accept",
            concurrent=self.concurrent)
        return self

    def stop(self):
        self._stop.set()
        try:
            self.kernel.close(self._listen_fd)
        except WedgeError:
            pass
        if self._accept_runner is not None:
            self._accept_runner.join(5.0)

    def store_bytes(self):
        """The full ``kv-store`` region (main created the tag)."""
        return bytes(self._store_buf.read())

    @property
    def wal(self):
        """The storage gate's write-ahead log (``None`` unless durable)."""
        return self._wal

    # -- data plane --------------------------------------------------------

    def _on_conn(self, conn_fd):
        self.connections_served += 1
        if self.kernel.scheduler == "reactor":
            return self._co_connection(conn_fd)
        return lambda: self._handle_safely(conn_fd)

    def _handle_safely(self, conn_fd):
        try:
            self.handle_connection(conn_fd)
        except WedgeError as exc:
            self.errors.append(f"{type(exc).__name__}: {exc}")
        finally:
            try:
                self.kernel.close(conn_fd)
            except WedgeError:
                pass

    def _spawn_islands(self, conn_fd):
        """Build one connection's compartments: parser, writer, pipe.

        The parser's client-fd grant is read-only; the writer's is
        write-only.  Replies cross between them over a pipe so one
        persistent connection can carry any number of pipelined
        commands without re-paying compartment setup.
        """
        kernel = self.kernel
        n = self.connections_served
        pipe_r, pipe_w = kernel.pipe()
        sc = SecurityContext()
        sc_fd_add(sc, conn_fd, FD_READ)
        sc_fd_add(sc, pipe_w, FD_WRITE)
        sc_cgate_add(sc, self._store_gate.id)
        writer_sc = SecurityContext()
        sc_fd_add(writer_sc, pipe_r, FD_READ)
        sc_fd_add(writer_sc, conn_fd, FD_WRITE)
        parser = kernel.sthread_create(
            sc, self._parser_body, {"fd": conn_fd, "out": pipe_w},
            name=f"kv-parser{n}", spawn="thread",
            supervise=self.supervise)
        writer = kernel.sthread_create(
            writer_sc, self._writer_body,
            {"src": pipe_r, "dst": conn_fd},
            name=f"kv-writer{n}", spawn="thread",
            supervise=self.supervise)
        return parser, writer, pipe_r, pipe_w

    def handle_connection(self, conn_fd):
        """Parser streams replies into a pipe; a writer pumps them out."""
        kernel = self.kernel
        parser, writer, pipe_r, pipe_w = self._spawn_islands(conn_fd)
        try:
            kernel.sthread_join(parser, timeout=30.0)
        except (SthreadFaulted, CompartmentDown) as exc:
            # contained: this connection drops, the store and the
            # metadata are untouched and the listener lives on
            self.errors.append(f"parser faulted: {exc}")
        finally:
            # half-close the reply pipe so the writer drains and exits
            try:
                kernel.close(pipe_w)
            except WedgeError:
                pass
        try:
            kernel.sthread_join(writer, timeout=30.0)
        except (SthreadFaulted, CompartmentDown) as exc:
            self.errors.append(f"writer faulted: {exc}")
        try:
            kernel.close(pipe_r)
        except WedgeError:
            pass

    def _co_connection(self, conn_fd):
        """Cooperative connection job — the kv shape under the reactor.

        The httpd tier parks one *persistent* pipelined connection per
        replica on this server, so (unlike httpd's own short requests)
        a connection here is long-lived by design: serving it inline or
        on the size-1 offload pool would starve every other client.
        Instead the job parks on the reactor twice over — first-byte
        readiness, then ``co_sthread_join`` on the worker islands (the
        islands themselves stay OS threads; their bodies block on the
        client fd).  N connections cost N parked continuations, not N
        pool threads, and the compartment split is byte-for-byte the
        threaded path's.
        """
        kernel = self.kernel
        try:
            yield from kernel.co_wait_readable(conn_fd)
        except WedgeError:
            pass    # timed out or reset: the parser's read reports it
        try:
            parser, writer, pipe_r, pipe_w = self._spawn_islands(conn_fd)
            try:
                yield from kernel.co_sthread_join(parser, timeout=30.0)
            except (SthreadFaulted, CompartmentDown) as exc:
                self.errors.append(f"parser faulted: {exc}")
            finally:
                try:
                    kernel.close(pipe_w)
                except WedgeError:
                    pass
            try:
                yield from kernel.co_sthread_join(writer, timeout=30.0)
            except (SthreadFaulted, CompartmentDown) as exc:
                self.errors.append(f"writer faulted: {exc}")
            try:
                kernel.close(pipe_r)
            except WedgeError:
                pass
        except WedgeError as exc:
            self.errors.append(f"{type(exc).__name__}: {exc}")
        finally:
            try:
                kernel.close(conn_fd)
            except WedgeError:
                pass

    # -- compartment bodies ------------------------------------------------

    def _parser_body(self, arg):
        """The parser compartment: untrusted lines -> storage gate.

        Reply lines stream into the pipe (``out``) one at a time, so
        pipelined commands on a long-lived connection are answered as
        they are parsed.
        """
        kernel = self.kernel
        fd = arg["fd"]
        out = arg["out"]
        store_id = None
        for gate_id in kernel.current().gates:
            if kernel.gate_record(gate_id).entry.__name__ == "store_gate":
                store_id = gate_id
        buf = bytearray()
        while True:
            while b"\r\n" not in buf:
                try:
                    chunk = kernel.recv(fd, 4096, timeout=10.0)
                except NetworkError:
                    chunk = None
                if not chunk:
                    break
                buf += chunk
            if b"\r\n" not in buf:
                break
            line, _, rest = bytes(buf).partition(b"\r\n")
            buf = bytearray(rest)
            # the untrusted-input surface of the cache tier
            maybe_trigger_exploit(kernel, line, context={
                "variant": self.variant,
                "kernel": kernel,
                "fd": fd,
                "store_tag": "kv-store",
                "meta_tag": "kv-meta",
                "evict_gate_id": self._evict_gate.id,
            })
            if line.strip().upper() == b"QUIT":
                kernel.send(out, b"BYE\r\n")
                break
            op, err = parse_command(line)
            if err is not None:
                kernel.send(out, b"ERR " + err + b"\r\n")
                continue
            try:
                reply = kernel.cgate(store_id, None, op)
            except (CallgateError, CompartmentDown):
                kernel.send(out, b"ERR storage unavailable\r\n")
                continue
            kernel.send(out, format_reply(op["op"], reply) + b"\r\n")
        return None

    def _writer_body(self, arg):
        """The reply pump: pipe in, client fd out, half-close at EOF."""
        kernel = self.kernel
        src = arg["src"]
        dst = arg["dst"]
        while True:
            try:
                data = kernel.recv(src, 4096, timeout=30.0)
            except WedgeError:
                break
            if not data:
                break
            try:
                kernel.send(dst, data)
            except WedgeError:
                break
        try:
            kernel.shutdown(dst)
        except WedgeError:
            pass
        return None


# -- the monolithic contrast -------------------------------------------------

class MonolithicKv:
    """Same protocol, no islands: parser and store share main's pages."""

    variant = "kv-mono"

    def __init__(self, network, addr, *, policy=CACHE_ASIDE,
                 mode=store.MODE_LRU, capacity=DEFAULT_CAPACITY,
                 queue_bound=DEFAULT_QUEUE_BOUND, preload=None,
                 supervise=None, name="kv-mono",
                 store_region=DEFAULT_STORE_REGION):
        if policy not in POLICIES:
            raise WedgeError(f"unknown cache policy {policy!r}")
        self.network = network
        self.addr = addr
        self.policy = policy
        self.capacity = int(capacity)
        self.queue_bound = int(queue_bound)
        self.supervise = supervise
        self.kernel = Kernel(net=network, name=name)
        self.main = self.kernel.start_main()

        state = store.empty_store()
        self._oracle = store.EvictionOracle(mode)
        for key, value in sorted((preload or {}).items()):
            key, value = bytes(key), bytes(value)
            state["cache"].append((key, value, 0))
            state["backing"].append((key, value))
            self._oracle.admit(key)
        # the whole store sits in main's ordinary heap: one hijacked
        # command line away from any reader
        self._store_buf = self.kernel.alloc_buf(
            store_region, init=store.pack_store(state, store_region))
        self._store_region = store_region
        self.stats = _new_stats()

        self._listen_fd = None
        self._accept_runner = None
        self._stop = threading.Event()
        self.connections_served = 0
        self.errors = []

    def start(self):
        if self._accept_runner is not None:
            raise WedgeError("kv-mono already started")
        self._listen_fd = self.kernel.listen(self.addr)
        self._accept_runner = start_accept_loop(
            self.kernel, self._listen_fd, self._on_conn,
            stop=self._stop, name="kv-mono-accept")
        return self

    def stop(self):
        self._stop.set()
        try:
            self.kernel.close(self._listen_fd)
        except WedgeError:
            pass
        if self._accept_runner is not None:
            self._accept_runner.join(5.0)

    def store_bytes(self):
        return bytes(self._store_buf.read())

    def _on_conn(self, conn_fd):
        self.connections_served += 1
        return lambda: self._handle_safely(conn_fd)

    def _handle_safely(self, conn_fd):
        try:
            self.handle_connection(conn_fd)
        except WedgeError as exc:
            self.errors.append(f"{type(exc).__name__}: {exc}")
        finally:
            try:
                self.kernel.close(conn_fd)
            except WedgeError:
                pass

    def handle_connection(self, conn_fd):
        """Everything in main: parse, mutate the store, reply."""
        kernel = self.kernel
        buf = bytearray()
        out = []
        while True:
            while b"\r\n" not in buf:
                try:
                    chunk = kernel.recv(conn_fd, 4096, timeout=10.0)
                except NetworkError:
                    chunk = None
                if not chunk:
                    break
                buf += chunk
            if b"\r\n" not in buf:
                break
            line, _, rest = bytes(buf).partition(b"\r\n")
            buf = bytearray(rest)
            maybe_trigger_exploit(kernel, line, context={
                "variant": self.variant,
                "kernel": kernel,
                "fd": conn_fd,
            })
            if line.strip().upper() == b"QUIT":
                out.append(b"BYE")
                break
            op, err = parse_command(line)
            if err is not None:
                out.append(b"ERR " + err)
                continue
            out.append(format_reply(op["op"], self._dispatch(op)))
        if out:
            kernel.send(conn_fd, b"\r\n".join(out) + b"\r\n")
            try:
                kernel.shutdown(conn_fd)
            except WedgeError:
                pass

    def _dispatch(self, op):
        state = store.unpack_store(self._store_buf.read())

        def evict(action, key=None):
            if action == "pick":
                return self._oracle.pick()
            getattr(self._oracle, action)(key)
            return None

        reply, dirty = apply_op(
            state, evict, op, policy=self.policy,
            capacity=self.capacity, queue_bound=self.queue_bound,
            stats=self.stats, now=self.kernel.costs.cycles())
        if dirty:
            self._store_buf.write(
                store.pack_store(state, self._store_region))
        return reply


# -- lint/verify wiring ------------------------------------------------------

def analysis_compartments(server, conn_fd=3):
    """CompartmentSpecs for ``python -m repro lint`` (repro.analysis).

    ``conn_fd`` models the client socket; ``conn_fd+1``/``conn_fd+2``
    model the reply pipe's read/write ends.
    """
    from repro.analysis.lint import (CompartmentSpec,
                                     gate_compartment_specs)
    kernel = server.kernel
    app = "kv"
    pipe_r, pipe_w = conn_fd + 1, conn_fd + 2
    sc = SecurityContext()
    sc_fd_add(sc, conn_fd, FD_READ)
    sc_fd_add(sc, pipe_w, FD_WRITE)
    sc_cgate_add(sc, server._store_gate.id)
    specs = [CompartmentSpec(
        "parser", app, kernel, sc,
        [(KvServer._parser_body,
          {"self": server, "arg": {"fd": conn_fd, "out": pipe_w}})],
        sthread_prefix="kv-parser", exploit_facing=True,
        sensitive_tags=("kv-store", "kv-meta"))]
    # both gates are standing (main-owned): the parser's context pulls
    # in the storage gate by delegated id, and a synthetic holder does
    # the same for the eviction gate so the linter diffs it too
    specs += gate_compartment_specs(sc, kernel, app=app)
    holder = SecurityContext()
    sc_cgate_add(holder, server._evict_gate.id)
    specs += gate_compartment_specs(holder, kernel, app=app)
    writer_sc = SecurityContext()
    sc_fd_add(writer_sc, pipe_r, FD_READ)
    sc_fd_add(writer_sc, conn_fd, FD_WRITE)
    specs.append(CompartmentSpec(
        "writer", app, kernel, writer_sc,
        [(KvServer._writer_body,
          {"self": server, "arg": {"src": pipe_r, "dst": conn_fd}})],
        sthread_prefix="kv-writer"))
    return specs
