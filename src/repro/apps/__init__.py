"""The paper's applications: POP3 (section 2), Apache/OpenSSL (section
5.1) and OpenSSH (section 5.2), each in monolithic and Wedge-partitioned
variants."""
