"""The Wedge-partitioned load balancer (the cluster's front door)."""

from repro.apps.lb.server import (ROUTE_KEY_LEN, LbServer, health_gate,
                                  probe_backend, route_gate)

__all__ = ["LbServer", "ROUTE_KEY_LEN", "health_gate", "probe_backend",
           "route_gate"]
