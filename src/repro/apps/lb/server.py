"""The ``lb`` app: a load balancer that is itself Wedge-partitioned.

The balancer fronting the cluster is infrastructure — and privileged
infrastructure is exactly what the paper says to split.  Three
compartments, three privilege islands:

* the **listener** (one ``lb-listener`` sthread per connection) reads
  the untrusted 8-byte routing preamble off the client socket.  It is
  the exploit surface, and it holds *nothing*: read access to the
  client fd plus the right to invoke the route gate.  It can never see
  the ring or the health table.
* the **router** (the ``route_gate`` callgate) owns the consistent-hash
  ring and the replica health table, both in private tagged memory
  (``lb-ring``, ``lb-health``, read-only even to the gate).  Given a
  key it returns a preference order over *alive* replicas — and logs
  every decision to an audit trail the campaign replays to prove no
  request was ever routed to a dead kernel after its breaker opened.
* the **health-checker** (the ``health_gate`` callgate) holds the only
  inter-kernel probe fds, opened per sweep inside the gate's own
  fd-table and closed before it returns.  It drives one
  :class:`~repro.resilience.CircuitBreaker` per replica: consecutive
  probe failures trip the breaker and zero the replica's health byte
  (ejection); once the cooldown elapses a single half-open probe
  re-admits it.  It is the only writer of ``lb-health``.

Traffic never transits a privileged compartment: after routing, the
main loop spawns two ``lb-fwd`` splice sthreads per connection, each
holding exactly one readable fd and one writable fd, which copy bytes
until EOF and propagate the half-close (``kernel.shutdown``).  TLS runs
end-to-end between client and replica — the balancer cannot read the
plaintext it forwards.
"""

from __future__ import annotations

import threading
import time

from repro.attacks.exploit import maybe_trigger_exploit
from repro.cluster.health import PING, PONG
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.core.errors import (CallgateError, CompartmentDown,
                               ConnectionShed, NetworkError,
                               SthreadFaulted, WedgeError)
from repro.core.kernel import Kernel
from repro.core.memory import PROT_READ, PROT_RW
from repro.core.policy import (FD_READ, FD_WRITE, SecurityContext,
                               sc_cgate_add, sc_fd_add, sc_mem_add)
from repro.net.serve import start_accept_loop
from repro.observe.events import (CLUSTER_EJECTED, CLUSTER_FAILOVER,
                                  CLUSTER_RECOVERED)
from repro.resilience import CLOSED, OPEN, CircuitBreaker

#: The routing key: the first this-many bytes of the preamble payload.
ROUTE_KEY_LEN = 8
#: Preamble payloads above this are rejected without reading further.
MAX_PREAMBLE = 512
#: Splice read size.
FORWARD_CHUNK = 4096


def encode_preamble(key):
    """The client-side wire form: ``u16 length || payload``.

    The payload is normally exactly the 8-byte routing key, but the
    length prefix makes the preamble *parser* — the balancer's
    untrusted-input surface — accept attacker-sized input, which is
    precisely what the listener compartment is sized for.
    """
    payload = bytes(key)
    if not payload or len(payload) > MAX_PREAMBLE:
        raise WedgeError(f"preamble must be 1..{MAX_PREAMBLE} bytes")
    return len(payload).to_bytes(2, "big") + payload


# -- the health-checker's probe (runs inside the health gate) ---------------

def probe_backend(kernel, addr, timeout=2.0):
    """One liveness probe: connect, ``ping``, expect ``OK``.

    The probe fd exists only in the invoking gate compartment's
    fd-table.  Every failure mode is typed and prompt: a refused or
    mid-close connect is :class:`~repro.core.errors.ConnectionRefused`
    (never a hang), a reset or timed-out exchange just reports the
    replica down.  A shed connect means the node is up but saturated —
    that is overload, not death, so it counts as alive.
    """
    try:
        fd = kernel.connect(addr)
    except ConnectionShed:
        return True
    except NetworkError:
        return False
    try:
        kernel.send(fd, PING)
        return kernel.recv_exact(fd, len(PONG), timeout=timeout) == PONG
    except NetworkError:
        return False
    finally:
        try:
            kernel.close(fd)
        except WedgeError:
            pass


# -- callgate entry points --------------------------------------------------

def route_gate(trusted, arg):
    """Pick replicas for a routing key; ring and health stay in here.

    Reads the serialized ring and the health table whole (the gate's
    only two memory grants, both read-only) and returns the key's
    preference order filtered to alive replicas.  Every decision lands
    on the audit trail: the proof obligation "no request is ever routed
    to a dead kernel after its breaker opens" is a replay of this log.
    """
    kernel = trusted["kernel"]
    ring = HashRing.deserialize(
        kernel.mem_read(trusted["ring_addr"], trusted["ring_len"]))
    alive = list(kernel.mem_read(trusted["health_addr"],
                                 trusted["health_len"]))
    key = bytes(arg["key"])
    primary = ring.route(key)
    order = ring.order(key, alive=alive)
    decision = {"key": key, "primary": primary, "order": order,
                "alive": alive}
    trusted["audit"].append(decision)
    if order and order[0] != primary:
        obs = trusted["obs"]
        if obs is not None and obs.enabled:
            obs.emit(CLUSTER_FAILOVER, comp=kernel.current().name,
                     key=key.hex(), primary=primary, chosen=order[0],
                     reason="primary-ejected")
    return decision


def _set_health(kernel, trusted, index, value):
    """Flip one replica's health byte (whole-block read-modify-write)."""
    health = bytearray(kernel.mem_read(trusted["health_addr"],
                                       trusted["health_len"]))
    health[index] = value
    kernel.mem_write(trusted["health_addr"], bytes(health))


def _mark_failure(kernel, trusted, index):
    """Count one failure; at the threshold, trip the breaker and eject."""
    counts = trusted["fail_counts"]
    counts[index] += 1
    if counts[index] < trusted["threshold"]:
        return {"ok": True, "ejected": False}
    breaker = trusted["breakers"][index]
    breaker.trip()
    _set_health(kernel, trusted, index, 0)
    obs = trusted["obs"]
    if obs is not None and obs.enabled:
        obs.emit(CLUSTER_EJECTED, comp=kernel.current().name,
                 backend=trusted["backends"][index]["name"],
                 fails=counts[index])
    return {"ok": True, "ejected": True}


def health_gate(trusted, arg):
    """Sweep every replica, or record one reported failure.

    ``op="report"`` is the data path telling on a replica it could not
    reach; ``op="sweep"`` probes each replica according to its breaker
    state — closed replicas get a liveness check (failures count toward
    ejection), open ones get at most the single half-open probe their
    cooldown admits (success re-admits, failure re-opens with escalated
    cooldown).
    """
    kernel = trusted["kernel"]
    if arg.get("op") == "report":
        return _mark_failure(kernel, trusted, int(arg["index"]))
    ejected = []
    recovered = []
    for entry in trusted["backends"]:
        index = entry["index"]
        breaker = trusted["breakers"][index]
        if breaker.state == OPEN and not breaker.try_probe():
            continue             # cooling down: no probe this sweep
        up = probe_backend(kernel, entry["health"],
                           timeout=trusted["probe_timeout"])
        if breaker.state == CLOSED:
            if up:
                trusted["fail_counts"][index] = 0
            elif _mark_failure(kernel, trusted, index)["ejected"]:
                ejected.append(entry["name"])
        elif up:
            # the single admitted half-open probe succeeded (or we are
            # resolving one a crashed incarnation left behind)
            breaker.probe_succeeded()
            trusted["fail_counts"][index] = 0
            _set_health(kernel, trusted, index, 1)
            recovered.append(entry["name"])
            obs = trusted["obs"]
            if obs is not None and obs.enabled:
                obs.emit(CLUSTER_RECOVERED, comp=kernel.current().name,
                         backend=entry["name"],
                         recoveries=breaker.recoveries)
        else:
            breaker.probe_failed()
    health = kernel.mem_read(trusted["health_addr"],
                             trusted["health_len"])
    return {"ok": True, "health": list(health), "ejected": ejected,
            "recovered": recovered}


# -- the server --------------------------------------------------------------


class LbServer:
    """The partitioned balancer: listener / router / health-checker."""

    variant = "lb"

    def __init__(self, network, addr, backends, *, vnodes=DEFAULT_VNODES,
                 failure_threshold=1, breaker_policy=None,
                 probe_timeout=2.0, clock=time.monotonic, supervise=None,
                 managed=(), name="lb"):
        self.network = network
        self.addr = addr
        #: list of {"name", "addr", "health"} dicts, index == ring index
        self.backends = [dict(b) for b in backends]
        if not self.backends:
            raise WedgeError("lb needs at least one backend")
        self.supervise = supervise
        #: sub-servers (replicas, responders) whose lifecycle this
        #: server owns — the chaos/lint builders hand the harness one
        #: object to start and stop
        self.managed = list(managed)
        self.kernel = Kernel(net=network, name=name)
        self.main = self.kernel.start_main()
        #: the fronted httpd's public key, set by builders so TLS
        #: clients can pin it (the balancer itself never holds a key)
        self.public_key = None

        kernel = self.kernel
        n = len(self.backends)
        self.ring = HashRing([b["name"] for b in self.backends],
                             vnodes=vnodes)
        blob = self.ring.serialize()
        self._ring_tag = kernel.tag_new(len(blob) + 1024, name="lb-ring")
        self._ring_buf = kernel.alloc_buf(len(blob), tag=self._ring_tag,
                                          init=blob)
        self._health_tag = kernel.tag_new(n + 1024, name="lb-health")
        self._health_buf = kernel.alloc_buf(n, tag=self._health_tag,
                                            init=b"\x01" * n)
        self.breakers = [CircuitBreaker(breaker_policy, clock=clock)
                         for _ in range(n)]
        #: routing decisions, in order (the no-dead-routing proof)
        self.audit = []
        self._route_trusted = {
            "kernel": kernel,
            "ring_addr": self._ring_buf.addr,
            "ring_len": self._ring_buf.size,
            "health_addr": self._health_buf.addr,
            "health_len": n,
            "audit": self.audit,
            "obs": kernel.observe,
        }
        self._health_trusted = {
            "kernel": kernel,
            "health_addr": self._health_buf.addr,
            "health_len": n,
            "backends": [{"index": i, "name": b["name"],
                          "health": b["health"]}
                         for i, b in enumerate(self.backends)],
            "breakers": self.breakers,
            "fail_counts": [0] * n,
            "threshold": int(failure_threshold),
            "probe_timeout": float(probe_timeout),
            "obs": kernel.observe,
        }
        health_sc = SecurityContext()
        sc_mem_add(health_sc, self._health_tag, PROT_RW)
        self._health_gate = kernel.create_gate(
            health_gate, health_sc, self._health_trusted,
            supervise=supervise)

        self._listen_fd = None
        self._accept_runner = None
        self._stop = threading.Event()
        self.connections_served = 0
        self.requests_forwarded = 0
        self.last_backend = None
        self.errors = []
        self.workers = []

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        if self._accept_runner is not None:
            raise WedgeError("lb already started")
        for server in self.managed:
            server.start()
        self._listen_fd = self.kernel.listen(self.addr)
        self._accept_runner = start_accept_loop(
            self.kernel, self._listen_fd, self._on_conn,
            stop=self._stop, name="lb-accept")
        return self

    def stop(self):
        self._stop.set()
        try:
            self.kernel.close(self._listen_fd)
        except WedgeError:
            pass
        if self._accept_runner is not None:
            self._accept_runner.join(5.0)
        for server in self.managed:
            server.stop()

    # -- control plane (invoked from main, the trusted master) -------------

    def health_sweep(self):
        """Run one health-checker sweep; returns its report."""
        return self.kernel.cgate(self._health_gate.id, None,
                                 {"op": "sweep"})

    def report_backend_failure(self, index):
        """Data path telling on a replica the splice could not reach."""
        return self.kernel.cgate(self._health_gate.id, None,
                                 {"op": "report", "index": int(index)})

    def health_bytes(self):
        """The current health table (main holds the tag read-write)."""
        return bytes(self._health_buf.read())

    # -- data plane --------------------------------------------------------

    def _on_conn(self, conn_fd):
        self.connections_served += 1
        return lambda: self._handle_safely(conn_fd)

    def _handle_safely(self, conn_fd):
        try:
            self.handle_connection(conn_fd)
        except WedgeError as exc:
            self.errors.append(f"{type(exc).__name__}: {exc}")
        finally:
            try:
                self.kernel.close(conn_fd)
            except WedgeError:
                pass

    def handle_connection(self, conn_fd):
        """Listener sthread for the preamble, then splice to a replica."""
        kernel = self.kernel
        n = self.connections_served
        sc = SecurityContext()
        sc_fd_add(sc, conn_fd, FD_READ)
        route_sc = SecurityContext()
        sc_mem_add(route_sc, self._ring_tag, PROT_READ)
        sc_mem_add(route_sc, self._health_tag, PROT_READ)
        sc_cgate_add(sc, route_gate, route_sc, self._route_trusted,
                     supervise=self.supervise)
        worker = kernel.sthread_create(
            sc, self._worker_body, {"fd": conn_fd},
            name=f"lb-listener{n}", spawn="thread",
            supervise=self.supervise)
        self.workers.append(worker)
        try:
            decision = kernel.sthread_join(worker, timeout=20.0)
        except (SthreadFaulted, CompartmentDown) as exc:
            # contained: this connection drops, the ring and health
            # table are untouched and the listener socket lives on
            self.errors.append(f"listener faulted: {exc}")
            return
        if not decision or not decision.get("order"):
            return
        self._splice(conn_fd, decision)

    def _splice(self, conn_fd, decision):
        """Connect to the first reachable replica and pump bytes."""
        kernel = self.kernel
        backend_fd = None
        chosen = None
        for index in decision["order"]:
            try:
                backend_fd = kernel.connect(self.backends[index]["addr"])
                chosen = index
                break
            except NetworkError:
                # the router thought it was alive; tell the checker and
                # fail over to the next replica in preference order
                self.report_backend_failure(index)
                obs = kernel.observe
                if obs.enabled:
                    obs.emit(CLUSTER_FAILOVER, comp=self.main.name,
                             backend=self.backends[index]["name"],
                             reason="connect-failed")
        if backend_fd is None:
            return
        n = self.connections_served
        up_sc = SecurityContext()
        sc_fd_add(up_sc, conn_fd, FD_READ)
        sc_fd_add(up_sc, backend_fd, FD_WRITE)
        down_sc = SecurityContext()
        sc_fd_add(down_sc, backend_fd, FD_READ)
        sc_fd_add(down_sc, conn_fd, FD_WRITE)
        up = kernel.sthread_create(
            up_sc, self._forward_body,
            {"src": conn_fd, "dst": backend_fd},
            name=f"lb-fwd{n}u", spawn="thread", supervise=self.supervise)
        down = kernel.sthread_create(
            down_sc, self._forward_body,
            {"src": backend_fd, "dst": conn_fd},
            name=f"lb-fwd{n}d", spawn="thread", supervise=self.supervise)
        for st in (up, down):
            try:
                kernel.sthread_join(st, timeout=30.0)
            except (SthreadFaulted, CompartmentDown) as exc:
                self.errors.append(f"forwarder faulted: {exc}")
        try:
            kernel.close(backend_fd)
        except WedgeError:
            pass
        self.requests_forwarded += 1
        self.last_backend = chosen

    # -- compartment bodies ------------------------------------------------

    def _worker_body(self, arg):
        """The listener compartment: untrusted preamble -> route gate."""
        kernel = self.kernel
        fd = arg["fd"]
        length = int.from_bytes(
            kernel.recv_exact(fd, 2, timeout=10.0), "big")
        if not 0 < length <= MAX_PREAMBLE:
            return None            # oversized preamble: drop, unread
        preamble = kernel.recv_exact(fd, length, timeout=10.0)
        # the untrusted-input surface of the balancer
        maybe_trigger_exploit(kernel, preamble, context={
            "variant": self.variant,
            "kernel": kernel,
            "fd": fd,
            "ring_tag": "lb-ring",
            "health_tag": "lb-health",
        })
        key = bytes(preamble[:ROUTE_KEY_LEN]).ljust(ROUTE_KEY_LEN, b"\0")
        gates = {}
        for gate_id in kernel.current().gates:
            gates[kernel.gate_record(gate_id).entry.__name__] = gate_id
        try:
            return kernel.cgate(gates["route_gate"], None, {"key": key})
        except (CallgateError, CompartmentDown):
            return None   # a dead router routes nowhere

    def _forward_body(self, arg):
        """One splice direction: copy until EOF, propagate half-close."""
        kernel = self.kernel
        src = arg["src"]
        dst = arg["dst"]
        while True:
            try:
                data = kernel.recv(src, FORWARD_CHUNK, timeout=10.0)
            except WedgeError:
                break
            if not data:
                break
            try:
                kernel.send(dst, data)
            except WedgeError:
                break
        try:
            kernel.shutdown(dst)
        except WedgeError:
            pass
        return None


def analysis_compartments(server, conn_fd=3):
    """CompartmentSpecs for ``python -m repro lint`` (repro.analysis)."""
    from repro.analysis.lint import (CompartmentSpec,
                                     gate_compartment_specs)
    kernel = server.kernel
    app = "lb"
    sc = SecurityContext()
    sc_fd_add(sc, conn_fd, FD_READ)
    route_sc = SecurityContext()
    sc_mem_add(route_sc, server._ring_tag, PROT_READ)
    sc_mem_add(route_sc, server._health_tag, PROT_READ)
    sc_cgate_add(sc, route_gate, route_sc, server._route_trusted,
                 supervise=server.supervise)
    specs = [CompartmentSpec(
        "listener", app, kernel, sc,
        [(LbServer._worker_body, {"self": server, "arg": {"fd": conn_fd}})],
        sthread_prefix="lb-listener", exploit_facing=True,
        sensitive_tags=("lb-ring", "lb-health"))]
    specs += gate_compartment_specs(sc, kernel, app=app)
    # the health gate belongs to main; a synthetic holder context gives
    # the linter the same declared-vs-static diff for it
    holder = SecurityContext()
    health_sc = SecurityContext()
    sc_mem_add(health_sc, server._health_tag, PROT_RW)
    sc_cgate_add(holder, health_gate, health_sc, server._health_trusted,
                 supervise=server.supervise)
    specs += gate_compartment_specs(holder, kernel, app=app)
    # one splice direction stands for both (identical shape, fds swapped)
    fwd_sc = SecurityContext()
    sc_fd_add(fwd_sc, conn_fd, FD_READ)
    sc_fd_add(fwd_sc, conn_fd + 1, FD_WRITE)
    specs.append(CompartmentSpec(
        "forwarder", app, kernel, fwd_sc,
        [(LbServer._forward_body,
          {"self": server, "arg": {"src": conn_fd, "dst": conn_fd + 1}})],
        sthread_prefix="lb-fwd"))
    return specs
