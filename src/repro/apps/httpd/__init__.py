"""The Apache/OpenSSL-like web server in its three partitionings.

* :class:`~repro.apps.httpd.monolithic.MonolithicHttpd` — the vanilla
  baseline (everything in one privileged compartment);
* :class:`~repro.apps.httpd.simple.SimplePartitionHttpd` — paper
  Figure 2 (private key behind a callgate);
* :class:`~repro.apps.httpd.mitm.MitmPartitionHttpd` — paper Figures
  3-5 (two-phase handshake/handler split; ``gate_mode`` picks fresh or
  recycled callgates).
"""

from repro.apps.httpd.common import HttpdBase, SessionState
from repro.apps.httpd.mitm import MitmPartitionHttpd
from repro.apps.httpd.monolithic import MonolithicHttpd
from repro.apps.httpd.simple import SimplePartitionHttpd
from repro.apps.httpd import content

__all__ = ["HttpdBase", "MitmPartitionHttpd", "MonolithicHttpd",
           "SessionState", "SimplePartitionHttpd", "content"]
