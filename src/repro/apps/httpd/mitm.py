"""The Figures-3-5 partitioning: two-phase SSL with default-deny sthreads.

This is the paper's full defense against a man-in-the-middle who can also
exploit the network-facing code (section 5.1.2):

* A **master** (the bootstrap compartment) only starts and stops two
  sthreads per connection and enforces that they run sequentially
  (Figure 3).
* The **ssl_handshake sthread** drives the first phase.  It reads and
  writes cleartext handshake messages on the network and *causes* the
  session key to exist — via callgates — but holds no mapping for the
  session-key tag, so it can never read, write, or oracle the key:

  - ``setup_session_key`` (private-key tag: read; session tag: rw)
    generates the server random itself and writes the derived master and
    channel keys into the session tag;
  - ``receive_finished`` decrypts and verifies the client's Finished
    record, returning **only a boolean**, and stashes the extended
    transcript hash in the finished-state tag;
  - ``send_finished`` takes **no caller argument**: it builds the
    server's Finished from the finished-state tag and returns sealed
    wire bytes the sthread can only transmit.

* After the handshake sthread *exits*, the master starts the
  **client_handler sthread** (Figure 5): read-only on the socket, no key
  material, using ``ssl_read`` (decrypt+verify) and ``ssl_write``
  (encrypt+transmit; it alone holds network write — the defense-in-depth
  choice the paper highlights).

``gate_mode="recycled"`` switches all four gates to long-lived recycled
callgates sharing a session-state *pool* tag — the Table 2 "Recycled"
column, including the paper's warning: recycled gates are reused across
connections, so a hijacked caller can point them at another connection's
state (demonstrated in the security tests).
"""

from __future__ import annotations

import threading

from repro.apps.httpd import content
from repro.apps.httpd.common import STATE_SIZE, HttpdBase, SessionState
from repro.attacks.exploit import maybe_trigger_exploit
from repro.core.errors import (CallgateError, CompartmentDown,
                               HandshakeFailure, MacFailure,
                               ProtocolError, SthreadFaulted, TagError,
                               WedgeError)
from repro.core.memory import PROT_READ, PROT_RW
from repro.core.policy import (FD_READ, FD_RW, FD_WRITE, SecurityContext,
                               sc_cgate_add, sc_fd_add, sc_mem_add)
from repro.crypto.mac import constant_time_eq
from repro.crypto.prf import finished_verify_data
from repro.tls import records as tls_records
from repro.tls import server_core
from repro.tls.handshake import (HS_CLIENT_HELLO, HS_CLIENT_KEY_EXCHANGE,
                                 Certificate, Finished, ServerHello,
                                 Transcript, extend_transcript,
                                 parse_handshake)
from repro.tls.records import (RT_APPDATA, RT_CHANGE_CIPHER, RT_HANDSHAKE,
                               KernelSocketTransport)
from repro.tls.session_cache import SessionCache

FINISHED_STATE_SIZE = 32


# ---------------------------------------------------------------------------
# callgate entry points (run with elevated privilege)
# ---------------------------------------------------------------------------

def _state_from(trusted, arg):
    """Resolve the SessionState a gate should operate on.

    Fresh gates carry the per-connection state address in their trusted
    argument.  Recycled gates are long-lived and shared, so the *caller*
    names the state block inside the pool tag — the paper's isolation
    trade-off, since a hijacked caller may name another connection's
    block.  The gate validates the address lies within the pool tag at
    least, so it cannot be pointed at arbitrary memory.
    """
    kernel = trusted["kernel"]
    if "state_addr" in trusted:
        return SessionState(kernel, trusted["state_addr"])
    addr = int(arg["state_addr"])
    segment, _ = kernel.space.find(addr)
    if segment.tag_id != trusted["pool_tag_id"]:
        raise ProtocolError("state address outside the session pool")
    return SessionState(kernel, addr)


def _finished_addr(trusted, arg):
    if "finished_addr" in trusted:
        return trusted["finished_addr"]
    addr = int(arg["finished_addr"])
    kernel = trusted["kernel"]
    segment, _ = kernel.space.find(addr)
    if segment.tag_id != trusted["pool_tag_id"]:
        raise ProtocolError("finished address outside the session pool")
    return addr


def setup_session_key_gate(trusted, arg):
    """Phase-1 gate: mint randoms, decrypt premaster, derive keys.

    Unlike Figure 2's gate, the master secret is **written into the
    session tag** and never returned; the caller learns only the public
    handshake fields.
    """
    if not isinstance(arg, dict):
        raise ProtocolError("bad callgate argument")
    kernel = trusted["kernel"]
    rng = trusted["rng"]
    cache = trusted["cache"]
    state = _state_from(trusted, arg)

    if arg.get("op") == "hello":
        offered = bytes(arg.get("session_id", b""))
        server_random = server_core.gen_server_random(rng)
        client_random = bytes(arg["client_random"])
        state.write_randoms(client_random, server_random)
        cached = cache.lookup(offered)
        if cached is not None:
            keys = server_core.session_keys(cached, client_random,
                                            server_random)
            state.write_keys(cached, keys)
            return {"server_random": server_random,
                    "session_id": offered, "resumed": True}
        session_id = server_core.make_session_id(rng)
        with trusted["lock"]:
            trusted["pending"][server_random] = session_id
        return {"server_random": server_random,
                "session_id": session_id, "resumed": False}

    if arg.get("op") == "kex":
        client_random, server_random = state.read_randoms()
        with trusted["lock"]:
            session_id = trusted["pending"].pop(server_random, None)
        if session_id is None:
            raise HandshakeFailure("no pending handshake for this state")
        key_bytes = kernel.mem_read(trusted["key_addr"],
                                    trusted["key_len"])
        master = server_core.setup_master_secret(
            key_bytes, bytes(arg["epms"]), client_random, server_random)
        keys = server_core.session_keys(master, client_random,
                                        server_random)
        state.write_keys(master, keys)
        cache.store(session_id, master)
        return {"ok": True}

    raise ProtocolError(f"unknown callgate op {arg.get('op')!r}")


def receive_finished_gate(trusted, arg):
    """Verify the client's Finished; return success/failure *only*.

    An exploited handshake sthread that feeds this gate ciphertext from
    the legitimate client gets back one bit — no decryption oracle
    (paper section 5.1.2).
    """
    kernel = trusted["kernel"]
    state = _state_from(trusted, arg)
    if not state.keys_ready():
        return {"ok": False}
    if state.handshake_done():
        # single-shot interface: once the handshake is over this gate
        # refuses, so a hijacked caller cannot replay it as an oracle or
        # desynchronise the record channel
        return {"ok": False}
    keys = state.read_keys()
    seq = state.peek_recv_seq()
    transcript_hash = bytes(arg["transcript_hash"])
    try:
        verify_data = server_core.open_finished_record(
            keys, seq, bytes(arg["wire"]))
    except WedgeError:
        return {"ok": False}
    master = state.read_master()
    expected = finished_verify_data(master, "client finished",
                                    transcript_hash)
    if not constant_time_eq(expected, verify_data):
        return {"ok": False}
    state.commit_recv_seq(seq)
    # prepare the server Finished input: hash the received cleartext
    # into the transcript and stash it in finished_state — readable only
    # by this gate and send_finished
    new_hash = extend_transcript(transcript_hash,
                                 Finished(verify_data).pack())
    kernel.mem_write(_finished_addr(trusted, arg), new_hash)
    return {"ok": True}


def send_finished_gate(trusted, arg):
    """Build the server's Finished from finished_state alone.

    Takes no payload from the caller: an exploited handshake sthread
    cannot choose what this gate encrypts (non-invertibility of the
    transcript hash, paper section 5.1.2).
    """
    kernel = trusted["kernel"]
    state = _state_from(trusted, arg)
    if state.handshake_done():
        # single-shot, like receive_finished: no replays
        raise HandshakeFailure("handshake already complete")
    transcript_hash = kernel.mem_read(_finished_addr(trusted, arg),
                                      FINISHED_STATE_SIZE)
    if transcript_hash == bytes(FINISHED_STATE_SIZE):
        raise HandshakeFailure("send_finished before receive_finished")
    master = state.read_master()
    keys = state.read_keys()
    verify = server_core.make_server_finished(master, transcript_hash)
    seq = state.next_send_seq()
    wire = server_core.seal_server_finished(keys, seq, verify)
    state.mark_handshake_done()
    return {"wire": wire}


def ssl_read_gate(trusted, arg):
    """Decrypt + MAC-verify one application record for client_handler.

    Injected data fails the MAC here and never reaches further
    application code; the gate faults and the handler sees only a dead
    callgate.
    """
    state = _state_from(trusted, arg)
    keys = state.read_keys()
    seq = state.peek_recv_seq()
    payload = tls_records.open_record(
        keys["client_enc"], keys["client_mac"], seq, RT_APPDATA,
        bytes(arg["wire"]))
    state.commit_recv_seq(seq)
    return {"data": payload}


def ssl_write_gate(trusted, arg):
    """Encrypt and *transmit* one application record.

    This gate, not client_handler, holds network write: data leaves the
    machine only as ciphertext sealed here.
    """
    kernel = trusted["kernel"]
    state = _state_from(trusted, arg)
    keys = state.read_keys()
    seq = state.next_send_seq()
    wire = tls_records.seal_record(
        keys["server_enc"], keys["server_mac"], seq, RT_APPDATA,
        bytes(arg["data"]))
    fd = trusted.get("fd")
    if fd is None:
        fd = int(arg["fd"])
    kernel.send(fd, tls_records.frame(RT_APPDATA, wire))
    return {"sent": len(wire)}


# ---------------------------------------------------------------------------
# the server
# ---------------------------------------------------------------------------

class MitmPartitionHttpd(HttpdBase):
    """Figures 3-5; ``gate_mode`` picks the Wedge or Recycled column."""

    variant = "mitm"

    def __init__(self, network, addr, *, gate_mode="fresh", **kwargs):
        super().__init__(network, addr, **kwargs)
        if gate_mode not in ("fresh", "recycled"):
            raise WedgeError(f"unknown gate_mode {gate_mode!r}")
        self.gate_mode = gate_mode
        self.session_cache = SessionCache()
        key_bytes = self.private_key.to_bytes()
        self.key_tag = self.kernel.tag_new(name="rsa-private-key")
        self.key_buf = self.kernel.alloc_buf(len(key_bytes),
                                             tag=self.key_tag,
                                             init=key_bytes)
        self._shared_trusted = {
            "kernel": self.kernel,
            "rng": self.rng.fork("server-random"),
            "cache": self.session_cache,
            "pending": {},
            "lock": threading.Lock(),
            "key_addr": self.key_buf.addr,
            "key_len": self.key_buf.size,
        }
        self.handshake_sthreads = []
        self.handler_sthreads = []
        if gate_mode == "recycled":
            self._setup_recycled_gates()

    # -- recycled-mode setup (gates created once, shared pool tag) ----------

    def _setup_recycled_gates(self):
        kernel = self.kernel
        self.pool_tag = kernel.tag_new(size=16 * 4096,
                                       name="session-pool")
        trusted = dict(self._shared_trusted,
                       pool_tag_id=self.pool_tag.id)

        def gate_sc(*grants):
            sc = SecurityContext()
            for tag, prot in grants:
                sc_mem_add(sc, tag, prot)
            return sc

        self.recycled_gates = {
            "setup": kernel.create_gate(
                setup_session_key_gate,
                gate_sc((self.key_tag, PROT_READ),
                        (self.pool_tag, PROT_RW)),
                trusted, recycled=True),
            "recv_fin": kernel.create_gate(
                receive_finished_gate,
                gate_sc((self.pool_tag, PROT_RW)), trusted,
                recycled=True),
            "send_fin": kernel.create_gate(
                send_finished_gate,
                gate_sc((self.pool_tag, PROT_RW)), trusted,
                recycled=True),
            "ssl_read": kernel.create_gate(
                ssl_read_gate, gate_sc((self.pool_tag, PROT_RW)),
                trusted, recycled=True),
            "ssl_write": kernel.create_gate(
                ssl_write_gate, gate_sc((self.pool_tag, PROT_RW)),
                trusted, recycled=True),
        }

    # -- per-connection master logic (Figure 3) -------------------------------

    def handle_connection(self, conn_fd):
        n = self.connections_served
        if self.gate_mode == "fresh":
            session_tag = self.kernel.tag_new(name=f"session{n}")
            finished_tag = self.kernel.tag_new(name=f"finished{n}")
            state_buf = self.kernel.alloc_buf(STATE_SIZE, tag=session_tag,
                                              init=bytes(STATE_SIZE))
            fin_buf = self.kernel.alloc_buf(
                FINISHED_STATE_SIZE, tag=finished_tag,
                init=bytes(FINISHED_STATE_SIZE))
        else:
            session_tag = finished_tag = None
            state_buf = self.kernel.alloc_buf(STATE_SIZE,
                                              tag=self.pool_tag,
                                              init=bytes(STATE_SIZE))
            fin_buf = self.kernel.alloc_buf(
                FINISHED_STATE_SIZE, tag=self.pool_tag,
                init=bytes(FINISHED_STATE_SIZE))
        try:
            self._run_phases(conn_fd, state_buf, fin_buf, session_tag,
                             finished_tag, n)
        finally:
            if self.gate_mode == "fresh":
                # per-client tags go back to the reuse cache — the 20%
                # throughput optimisation of paper section 4.1
                self.kernel.tag_delete(session_tag)
                self.kernel.tag_delete(finished_tag)
            else:
                self.kernel.sfree(state_buf.addr)
                self.kernel.sfree(fin_buf.addr)

    def _run_phases(self, conn_fd, state_buf, fin_buf, session_tag,
                    finished_tag, n):
        # phase 1: the SSL handshake sthread
        hs_sc = self._handshake_context(conn_fd, state_buf, fin_buf,
                                        session_tag, finished_tag)
        hs = self.kernel.sthread_create(
            hs_sc, self._handshake_body,
            {"fd": conn_fd, "state_addr": state_buf.addr,
             "finished_addr": fin_buf.addr},
            name=f"ssl-handshake{n}", spawn="thread",
            supervise=self.supervise)
        self.handshake_sthreads.append(hs)
        try:
            self.kernel.sthread_join(hs, timeout=20.0)
        except (SthreadFaulted, CompartmentDown) as exc:
            # contained: the phase-1 compartment died, the master did not
            self.errors.append(f"handshake faulted: {exc}")

        # the master starts phase 2 only after phase 1 *exited* and the
        # gates confirmed completion in memory the sthread cannot forge
        state = SessionState(self.kernel, state_buf.addr)
        if not state.handshake_done():
            return

        handler_sc = self._handler_context(conn_fd, state_buf, fin_buf,
                                           session_tag)
        handler = self.kernel.sthread_create(
            handler_sc, self._handler_body,
            {"fd": conn_fd, "state_addr": state_buf.addr},
            name=f"client-handler{n}", spawn="thread",
            supervise=self.supervise)
        self.handler_sthreads.append(handler)
        try:
            self.kernel.sthread_join(handler, timeout=20.0)
        except (SthreadFaulted, CompartmentDown) as exc:
            self.errors.append(f"handler faulted: {exc}")

    def _handshake_context(self, conn_fd, state_buf, fin_buf, session_tag,
                           finished_tag):
        """Phase-1 policy: cleartext network, three gates, *no* keys."""
        sc = SecurityContext()
        sc_fd_add(sc, conn_fd, FD_RW)
        if self.gate_mode == "recycled":
            for name in ("setup", "recv_fin", "send_fin"):
                sc_cgate_add(sc, self.recycled_gates[name].id)
            return sc
        trusted = dict(self._shared_trusted,
                       state_addr=state_buf.addr,
                       finished_addr=fin_buf.addr)
        setup_sc = SecurityContext()
        sc_mem_add(setup_sc, self.key_tag, PROT_READ)
        sc_mem_add(setup_sc, session_tag, PROT_RW)
        sc_cgate_add(sc, setup_session_key_gate, setup_sc, trusted,
                     supervise=self.supervise)
        recv_sc = SecurityContext()
        sc_mem_add(recv_sc, session_tag, PROT_RW)
        sc_mem_add(recv_sc, finished_tag, PROT_RW)
        sc_cgate_add(sc, receive_finished_gate, recv_sc, trusted,
                     supervise=self.supervise)
        send_sc = SecurityContext()
        sc_mem_add(send_sc, session_tag, PROT_RW)
        sc_mem_add(send_sc, finished_tag, PROT_READ)
        sc_cgate_add(sc, send_finished_gate, send_sc, trusted,
                     supervise=self.supervise)
        return sc

    def _handler_context(self, conn_fd, state_buf, fin_buf, session_tag):
        """Phase-2 policy: read-only network, two gates, own scratch."""
        sc = SecurityContext()
        if self.gate_mode == "recycled":
            # recycled gates are created before any connection exists, so
            # the per-connection write descriptor must flow through the
            # caller — which therefore has to hold it.  Part of the
            # isolation recycled callgates trade for speed (paper §3.3):
            # the fresh-gate variant keeps client_handler write-free.
            sc_fd_add(sc, conn_fd, FD_RW)
            for name in ("ssl_read", "ssl_write"):
                sc_cgate_add(sc, self.recycled_gates[name].id)
            return sc
        sc_fd_add(sc, conn_fd, FD_READ)   # no write: defense in depth
        trusted = dict(self._shared_trusted, state_addr=state_buf.addr,
                       fd=conn_fd)
        read_sc = SecurityContext()
        sc_mem_add(read_sc, session_tag, PROT_RW)
        sc_cgate_add(sc, ssl_read_gate, read_sc, trusted,
                     supervise=self.supervise)
        write_sc = SecurityContext()
        sc_mem_add(write_sc, session_tag, PROT_RW)
        sc_fd_add(write_sc, conn_fd, FD_WRITE)
        sc_cgate_add(sc, ssl_write_gate, write_sc, trusted,
                     supervise=self.supervise)
        return sc

    # -- phase 1 body (runs inside the ssl_handshake sthread) ----------------

    def _handshake_body(self, arg):
        driver = HandshakeDriver(self, arg)
        return driver.run()

    # -- phase 2 body (runs inside the client_handler sthread) ----------------

    def _handler_body(self, arg):
        driver = HandlerDriver(self, arg)
        return driver.run()


def _gate_ids_by_entry(kernel, sthread):
    """Map entry-point names to the gate ids granted to *sthread*."""
    mapping = {}
    for gate_id in sthread.gates:
        record = kernel.gate_record(gate_id)
        mapping[record.entry.__name__] = gate_id
    return mapping


class HandshakeDriver:
    """The ssl_handshake sthread's logic (phase 1, Figure 4)."""

    def __init__(self, server, arg):
        self.server = server
        self.kernel = server.kernel
        self.fd = arg["fd"]
        self.state_addr = arg["state_addr"]
        self.finished_addr = arg["finished_addr"]
        self.gates = _gate_ids_by_entry(self.kernel,
                                        self.kernel.current())
        self.transport = KernelSocketTransport(self.kernel, self.fd)

    def _gate_arg(self, **fields):
        if self.server.gate_mode == "recycled":
            fields["state_addr"] = self.state_addr
            fields["finished_addr"] = self.finished_addr
        return fields

    def run(self):
        rtype, body = tls_records.read_frame(self.transport)
        if rtype != RT_HANDSHAKE:
            raise ProtocolError("expected ClientHello")
        hello = parse_handshake(body, expect=HS_CLIENT_HELLO)
        # the same parser vulnerability as every other variant — but it
        # hijacks a compartment that cannot read the session key
        maybe_trigger_exploit(self.kernel, hello.extensions, context={
            "variant": "mitm",
            "driver": self,
            "fd": self.fd,
            "kernel": self.kernel,
            "gates": self.gates,
            "state_addr": self.state_addr,
            "finished_addr": self.finished_addr,
            "hello": hello,
            "hello_bytes": body,
        })
        self.complete(hello, body)
        return "handshake-complete"

    def complete(self, hello, hello_bytes):
        """Drive the handshake; never sees key material.  Returns None."""
        kernel = self.kernel
        transcript = Transcript()
        transcript.add(hello_bytes)

        reply = kernel.cgate(
            self.gates["setup_session_key_gate"], None,
            self._gate_arg(op="hello", session_id=hello.session_id,
                           client_random=hello.client_random))
        server_random = reply["server_random"]
        resumed = reply["resumed"]

        server_hello = ServerHello(server_random, reply["session_id"],
                                   resumed).pack()
        self._send(RT_HANDSHAKE, server_hello)
        transcript.add(server_hello)

        if not resumed:
            cert = Certificate(self.server.public_key.to_bytes(),
                               b"wedge-httpd").pack()
            self._send(RT_HANDSHAKE, cert)
            transcript.add(cert)
            rtype, body = tls_records.read_frame(self.transport)
            cke = parse_handshake(body, expect=HS_CLIENT_KEY_EXCHANGE)
            transcript.add(body)
            kernel.cgate(self.gates["setup_session_key_gate"], None,
                         self._gate_arg(op="kex",
                                        epms=cke.encrypted_premaster))

        rtype, _ = tls_records.read_frame(self.transport)
        if rtype != RT_CHANGE_CIPHER:
            raise ProtocolError("expected ChangeCipherSpec")
        # the client's Finished arrives sealed; this sthread cannot open
        # it — the raw wire bytes go to the receive_finished gate
        rtype, wire = tls_records.read_frame(self.transport)
        if rtype != RT_HANDSHAKE:
            raise ProtocolError("expected Finished")
        reply = kernel.cgate(
            self.gates["receive_finished_gate"], None,
            self._gate_arg(wire=wire,
                           transcript_hash=transcript.digest()))
        if not reply["ok"]:
            raise HandshakeFailure("client Finished rejected")

        self._send(RT_CHANGE_CIPHER, b"")
        reply = kernel.cgate(self.gates["send_finished_gate"], None,
                             self._gate_arg())
        self._send(RT_HANDSHAKE, reply["wire"])
        return None

    def _send(self, rtype, body):
        self.transport.send(tls_records.frame(rtype, body))


class HandlerDriver:
    """The client_handler sthread's logic (phase 2, Figure 5)."""

    def __init__(self, server, arg):
        self.server = server
        self.kernel = server.kernel
        self.fd = arg["fd"]
        self.state_addr = arg["state_addr"]
        self.gates = _gate_ids_by_entry(self.kernel,
                                        self.kernel.current())
        self.transport = KernelSocketTransport(self.kernel, self.fd)

    def _gate_arg(self, **fields):
        if self.server.gate_mode == "recycled":
            fields["state_addr"] = self.state_addr
            fields["fd"] = self.fd
        return fields

    def run(self):
        request = bytearray()
        while True:
            rtype, wire = tls_records.read_frame(self.transport)
            if rtype != RT_APPDATA:
                continue  # stray records are ignored pre-decryption
            try:
                reply = self.kernel.cgate(
                    self.gates["ssl_read_gate"], None,
                    self._gate_arg(wire=wire))
            except (CallgateError, MacFailure):
                # MAC failure: injected data dies inside the gate and
                # never reaches the application parser
                continue
            request += reply["data"]
            if content.request_complete(bytes(request)):
                break
        maybe_trigger_exploit(self.kernel, bytes(request), context={
            "variant": "mitm-request",
            "driver": self,
            "fd": self.fd,
            "kernel": self.kernel,
            "gates": self.gates,
            "state_addr": self.state_addr,
        })
        response = self.server.respond_to(bytes(request))
        self.kernel.cgate(self.gates["ssl_write_gate"],
                          self._write_perms(),
                          self._gate_arg(data=response))
        return "request-served"

    def _write_perms(self):
        """Recycled mode: delegate this connection's write descriptor."""
        if self.server.gate_mode != "recycled":
            return None
        perms = SecurityContext()
        sc_fd_add(perms, self.fd, FD_WRITE)
        return perms


def analysis_compartments(server, conn_fd=3):
    """CompartmentSpecs for ``python -m repro lint`` (repro.analysis).

    Models one fresh-gate connection: the session and finished tags are
    allocated here with counter-free names, so their labels line up with
    the per-connection runtime tags (``session0``...) after
    normalisation.
    """
    from repro.analysis.lint import (CompartmentSpec,
                                     gate_compartment_specs)
    if server.gate_mode != "fresh":
        raise WedgeError("lint targets model gate_mode='fresh'")
    kernel = server.kernel
    session_tag = kernel.tag_new(name="session")
    finished_tag = kernel.tag_new(name="finished")
    state_buf = kernel.alloc_buf(STATE_SIZE, tag=session_tag,
                                 init=bytes(STATE_SIZE))
    fin_buf = kernel.alloc_buf(FINISHED_STATE_SIZE, tag=finished_tag,
                               init=bytes(FINISHED_STATE_SIZE))
    hs_sc = server._handshake_context(conn_fd, state_buf, fin_buf,
                                      session_tag, finished_tag)
    handler_sc = server._handler_context(conn_fd, state_buf, fin_buf,
                                         session_tag)
    app = f"httpd.{server.variant}"
    sensitive = ("rsa-private-key",)
    specs = [
        CompartmentSpec(
            "ssl-handshake", app, kernel, hs_sc,
            [(MitmPartitionHttpd._handshake_body,
              {"self": server,
               "arg": {"fd": conn_fd, "state_addr": state_buf.addr,
                       "finished_addr": fin_buf.addr}})],
            sthread_prefix="ssl-handshake", exploit_facing=True,
            sensitive_tags=sensitive),
        CompartmentSpec(
            "client-handler", app, kernel, handler_sc,
            [(MitmPartitionHttpd._handler_body,
              {"self": server,
               "arg": {"fd": conn_fd,
                       "state_addr": state_buf.addr}})],
            sthread_prefix="client-handler", exploit_facing=True,
            sensitive_tags=sensitive),
    ]
    seen = {spec.name for spec in specs}
    for sc in (hs_sc, handler_sc):
        for spec in gate_compartment_specs(sc, kernel, app=app):
            if spec.name not in seen:
                seen.add(spec.name)
                specs.append(spec)
    return specs
