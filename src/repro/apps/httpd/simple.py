"""The Figure-2 partitioning: worker sthread + ``setup_session_key`` gate.

Goal (paper section 5.1.1, the no-interposition threat model): protect
the RSA private key from a worker exploit, and deny the attacker any
influence over session-key generation.

* One **worker sthread per connection** runs all network-facing code with
  read-write on the connection descriptor and *one* callgate grant.  It
  terminates after serving a single request, isolating requests.
* The **setup_session_key callgate** alone holds read access to the tag
  carrying the private key.  Crucially it *generates the server random
  itself* rather than accepting it as an argument, so a hijacked worker
  cannot steer the session key (the key is a PRF over an input that is
  random from the attacker's perspective).
* The callgate **returns the established session key** to the worker —
  fine against an eavesdropper, but exactly the property the
  man-in-the-middle attack of section 5.1.2 abuses; compare
  :mod:`repro.apps.httpd.mitm`.
"""

from __future__ import annotations

import threading

from repro.apps.httpd import content
from repro.apps.httpd.common import HttpdBase
from repro.attacks.exploit import maybe_trigger_exploit
from repro.core.errors import (CompartmentDown, HandshakeFailure,
                               ProtocolError, SthreadFaulted, WedgeError)
from repro.core.policy import (FD_RW, SecurityContext, sc_cgate_add,
                               sc_fd_add, sc_mem_add, sc_sel_context)
from repro.core.memory import PROT_READ
from repro.crypto.mac import constant_time_eq
from repro.crypto.prf import finished_verify_data
from repro.tls import server_core
from repro.tls.handshake import (HS_CLIENT_HELLO, HS_CLIENT_KEY_EXCHANGE,
                                 HS_FINISHED, Certificate, Finished,
                                 ServerHello, Transcript, parse_handshake)
from repro.tls.records import (RT_APPDATA, RT_CHANGE_CIPHER, RT_HANDSHAKE,
                               KernelSocketTransport, RecordChannel)
from repro.tls.session_cache import SessionCache


def setup_session_key_gate(trusted, arg):
    """Entry point of the Figure-2 callgate.

    Two operations, because the handshake needs the server random before
    the encrypted premaster exists:

    * ``op="hello"``: look up the offered session id in the cache, mint
      the session id and the *server-generated* random.  For a resumed
      session the cached master is returned right away.
    * ``op="key"``: decrypt the premaster under the tagged private key
      and derive the master secret, **binding the server random minted in
      the hello step** — a caller-supplied random is never accepted.

    The master secret is returned to the caller: the Figure-2 design
    trusts the worker with the session key once established.
    """
    kernel = trusted["kernel"]
    rng = trusted["rng"]
    cache = trusted["cache"]
    pending = trusted["pending"]
    if not isinstance(arg, dict):
        raise ProtocolError("bad callgate argument")

    if arg.get("op") == "hello":
        offered = bytes(arg.get("session_id", b""))
        cached = cache.lookup(offered)
        server_random = server_core.gen_server_random(rng)
        if cached is not None:
            return {"server_random": server_random,
                    "session_id": offered, "resumed": True,
                    "master": cached}
        session_id = server_core.make_session_id(rng)
        with trusted["lock"]:
            pending[server_random] = session_id
        return {"server_random": server_random,
                "session_id": session_id, "resumed": False,
                "master": None}

    if arg.get("op") == "key":
        server_random = bytes(arg["server_random"])
        with trusted["lock"]:
            session_id = pending.pop(server_random, None)
        if session_id is None:
            # the worker may not supply a random the gate did not mint
            raise HandshakeFailure("unknown server random")
        key_bytes = kernel.mem_read(trusted["key_addr"],
                                    trusted["key_len"])
        master = server_core.setup_master_secret(
            key_bytes, bytes(arg["epms"]), bytes(arg["client_random"]),
            server_random)
        cache.store(session_id, master)
        return {"master": master}

    raise ProtocolError(f"unknown callgate op {arg.get('op')!r}")


#: The SELinux domain for confined workers, and the only syscalls the
#: Figure-2 worker actually needs.  The paper's evaluation grants all
#: syscalls to focus on memory privileges (§5); ``confine=True`` shows
#: the sc_sel_context mechanism doing real work instead.
WORKER_SID = "system_u:system_r:httpd_worker_t"
WORKER_SYSCALLS = {"send", "recv", "close", "cgate"}


class SimplePartitionHttpd(HttpdBase):
    """Figure 2: private key behind a callgate; worker gets the key."""

    variant = "simple"

    def __init__(self, network, addr, *, confine=False,
                 worker_quota=None, **kwargs):
        super().__init__(network, addr, **kwargs)
        self.confine = confine
        #: optional per-worker allocation cap (the DoS extension)
        self.worker_quota = worker_quota
        if confine:
            self.kernel.selinux.define_domain(WORKER_SID,
                                              WORKER_SYSCALLS)
        self.session_cache = SessionCache()
        # the private key lives in tagged memory; only the callgate's
        # security context will name this tag
        key_bytes = self.private_key.to_bytes()
        self.key_tag = self.kernel.tag_new(name="rsa-private-key")
        self.key_buf = self.kernel.alloc_buf(len(key_bytes),
                                             tag=self.key_tag,
                                             init=key_bytes)
        self._gate_trusted = {
            "kernel": self.kernel,
            "rng": self.rng.fork("server-random"),
            "cache": self.session_cache,
            "pending": {},
            "lock": threading.Lock(),
            "key_addr": self.key_buf.addr,
            "key_len": self.key_buf.size,
        }
        self.workers = []

    def _worker_context(self, conn_fd):
        """The worker's entire privilege: the connection plus one gate."""
        sc = SecurityContext(mem_quota=self.worker_quota)
        if self.confine:
            sc_sel_context(sc, WORKER_SID)
        sc_fd_add(sc, conn_fd, FD_RW)
        gate_sc = SecurityContext()
        sc_mem_add(gate_sc, self.key_tag, PROT_READ)
        sc_cgate_add(sc, setup_session_key_gate, gate_sc,
                     self._gate_trusted, supervise=self.supervise)
        return sc

    def handle_connection(self, conn_fd):
        sc = self._worker_context(conn_fd)
        worker = self.kernel.sthread_create(
            sc, self._worker_body, {"fd": conn_fd},
            name=f"worker{self.connections_served}", spawn="thread",
            supervise=self.supervise)
        self.workers.append(worker)
        try:
            self.kernel.sthread_join(worker, timeout=20.0)
        except (SthreadFaulted, CompartmentDown) as exc:
            # contained: this client's connection dies with its worker;
            # the listener keeps accepting
            self.errors.append(f"worker faulted: {exc}")

    # -- code below this line executes inside the worker sthread ------------

    def _worker_body(self, arg):
        driver = WorkerDriver(self, arg["fd"])
        return driver.run()


class WorkerDriver:
    """Per-connection handshake + request logic (runs in the worker).

    Split into ``parse hello`` / ``complete`` so the simulated exploit
    can hijack control after hello parsing and still finish the
    handshake — the return-to-own-code style the MITM campaign uses.
    """

    def __init__(self, server, conn_fd):
        self.server = server
        self.kernel = server.kernel
        self.fd = conn_fd
        self.gate_id = next(iter(self.kernel.current().gates))
        self.channel = RecordChannel(
            KernelSocketTransport(self.kernel, conn_fd))
        self.master = None

    def run(self):
        rtype, body = self.channel.recv_record(expect=RT_HANDSHAKE)
        hello = parse_handshake(body, expect=HS_CLIENT_HELLO)
        # the simulated parser vulnerability: untrusted extensions
        maybe_trigger_exploit(self.kernel, hello.extensions, context={
            "variant": "simple",
            "driver": self,
            "fd": self.fd,
            "kernel": self.kernel,
            "gate_id": self.gate_id,
            "hello": hello,
            "hello_bytes": body,
        })
        self.complete(hello, body)
        return "served"

    def complete(self, hello, hello_bytes):
        """Everything after hello parsing; returns the master secret."""
        kernel = self.kernel
        channel = self.channel
        transcript = Transcript()
        transcript.add(hello_bytes)

        reply = kernel.cgate(self.gate_id, None, {
            "op": "hello", "session_id": hello.session_id})
        server_random = reply["server_random"]
        resumed = reply["resumed"]

        server_hello = ServerHello(server_random, reply["session_id"],
                                   resumed).pack()
        channel.send_record(RT_HANDSHAKE, server_hello)
        transcript.add(server_hello)

        if resumed:
            master = reply["master"]
        else:
            cert = Certificate(self.server.public_key.to_bytes(),
                               b"wedge-httpd").pack()
            channel.send_record(RT_HANDSHAKE, cert)
            transcript.add(cert)
            rtype, body = channel.recv_record(expect=RT_HANDSHAKE)
            cke = parse_handshake(body, expect=HS_CLIENT_KEY_EXCHANGE)
            transcript.add(body)
            reply2 = kernel.cgate(self.gate_id, None, {
                "op": "key", "server_random": server_random,
                "client_random": hello.client_random,
                "epms": cke.encrypted_premaster})
            master = reply2["master"]

        # Figure 2: the worker holds the session key from here on
        self.master = master
        keys = server_core.session_keys(master, hello.client_random,
                                        server_random)

        channel.recv_record(expect=RT_CHANGE_CIPHER)
        channel.activate_recv(keys["client_enc"], keys["client_mac"])
        rtype, body = channel.recv_record(expect=RT_HANDSHAKE)
        finished = parse_handshake(body, expect=HS_FINISHED)
        expected = finished_verify_data(master, "client finished",
                                        transcript.digest())
        if not constant_time_eq(expected, finished.verify_data):
            raise HandshakeFailure("client Finished verification failed")
        transcript.add(Finished(finished.verify_data).pack())

        channel.send_record(RT_CHANGE_CIPHER, b"")
        channel.activate_send(keys["server_enc"], keys["server_mac"])
        verify = server_core.make_server_finished(master,
                                                  transcript.digest())
        channel.send_record(RT_HANDSHAKE, Finished(verify).pack())

        self._serve_one_request(channel)
        return master

    def _serve_one_request(self, channel):
        request = bytearray()
        while True:
            rtype, payload = channel.recv_record()
            if rtype != RT_APPDATA:
                raise ProtocolError(f"unexpected record type {rtype}")
            request += payload
            if content.request_complete(bytes(request)):
                break
        maybe_trigger_exploit(self.kernel, bytes(request), context={
            "variant": "simple-request",
            "driver": self,
            "fd": self.fd,
            "kernel": self.kernel,
        })
        channel.send_record(RT_APPDATA,
                            self.server.respond_to(bytes(request)))


def analysis_compartments(server, conn_fd=3):
    """CompartmentSpecs for ``python -m repro lint`` (repro.analysis)."""
    from repro.analysis.lint import (CompartmentSpec,
                                     gate_compartment_specs)
    sc = server._worker_context(conn_fd)
    app = f"httpd.{server.variant}"
    specs = [CompartmentSpec(
        "worker", app, server.kernel, sc,
        [(SimplePartitionHttpd._worker_body,
          {"self": server, "arg": {"fd": conn_fd}})],
        sthread_prefix="worker", exploit_facing=True,
        sensitive_tags=("rsa-private-key",))]
    specs += gate_compartment_specs(sc, server.kernel, app=app)
    return specs
