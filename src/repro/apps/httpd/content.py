"""Minimal HTTP/1.0 request handling for the Apache-like server.

The paper's Apache serves static web pages over SSL; these helpers parse
``GET`` requests and build responses from an in-memory page map.  Request
parsing is one of the server's untrusted-input surfaces, so it carries an
exploit hook like the ClientHello parser does — under the Figures-3-5
partitioning it runs in the ``client_handler`` sthread.
"""

from __future__ import annotations

from repro.core.errors import ProtocolError

DEFAULT_PAGES = {
    "/": b"<html><body><h1>It works!</h1></body></html>",
    "/index.html": b"<html><body><h1>It works!</h1></body></html>",
    "/about": b"<html><body>Wedge-partitioned httpd</body></html>",
    "/account": b"<html><body>balance: 1,234.56</body></html>",
}

_TERMINATOR = b"\r\n\r\n"


def request_complete(data):
    """HTTP/1.0 GET requests end with an empty line."""
    return _TERMINATOR in data


def parse_request(data):
    """Return the request path; raises ProtocolError on malformed input."""
    head = data.split(_TERMINATOR, 1)[0]
    try:
        request_line = head.split(b"\r\n")[0].decode("latin-1")
        method, path, version = request_line.split(" ", 2)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("malformed request line") from exc
    if method != "GET":
        raise ProtocolError(f"unsupported method {method!r}")
    if not version.startswith("HTTP/"):
        raise ProtocolError("malformed HTTP version")
    return path


def build_response(pages, path):
    body = pages.get(path)
    if body is None:
        body = b"<html><body>404 not found</body></html>"
        status = b"404 Not Found"
    else:
        status = b"200 OK"
    return (b"HTTP/1.0 " + status + b"\r\n"
            b"Server: wedge-httpd/0.1\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Content-Type: text/html\r\n\r\n" + body)


def build_request(path):
    return (f"GET {path} HTTP/1.0\r\n"
            f"Host: wedge\r\n\r\n").encode()


def response_body(response):
    """Split a response's body out (client-side convenience)."""
    idx = response.find(_TERMINATOR)
    if idx < 0:
        raise ProtocolError("malformed response")
    return response[idx + len(_TERMINATOR):]
