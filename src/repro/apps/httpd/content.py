"""Minimal HTTP/1.0 request handling for the Apache-like server.

The paper's Apache serves static web pages over SSL; these helpers parse
``GET`` requests and build responses from an in-memory page map.  Request
parsing is one of the server's untrusted-input surfaces, so it carries an
exploit hook like the ClientHello parser does — under the Figures-3-5
partitioning it runs in the ``client_handler`` sthread.
"""

from __future__ import annotations

import zlib

from repro.core.errors import ProtocolError

#: Paths under this prefix are dynamic ("CGI") content: rendered per
#: request rather than served from the page map.
CGI_PREFIX = "/cgi/"

#: Size of the per-request scratch region a CGI handler renders into.
CGI_REGION = 4096

DEFAULT_PAGES = {
    "/": b"<html><body><h1>It works!</h1></body></html>",
    "/index.html": b"<html><body><h1>It works!</h1></body></html>",
    "/about": b"<html><body>Wedge-partitioned httpd</body></html>",
    "/account": b"<html><body>balance: 1,234.56</body></html>",
}

_TERMINATOR = b"\r\n\r\n"


def request_complete(data):
    """HTTP/1.0 GET requests end with an empty line."""
    return _TERMINATOR in data


def parse_request(data):
    """Return the request path; raises ProtocolError on malformed input."""
    head = data.split(_TERMINATOR, 1)[0]
    try:
        request_line = head.split(b"\r\n")[0].decode("latin-1")
        method, path, version = request_line.split(" ", 2)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("malformed request line") from exc
    if method != "GET":
        raise ProtocolError(f"unsupported method {method!r}")
    if not version.startswith("HTTP/"):
        raise ProtocolError("malformed HTTP version")
    return path


def http_response(status, body):
    return (b"HTTP/1.0 " + status + b"\r\n"
            b"Server: wedge-httpd/0.1\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Content-Type: text/html\r\n\r\n" + body)


def build_response(pages, path):
    body = pages.get(path)
    if body is None:
        return http_response(b"404 Not Found",
                             b"<html><body>404 not found</body></html>")
    return http_response(b"200 OK", body)


def is_dynamic(path):
    """Whether *path* is CGI-style dynamic content."""
    return path.startswith(CGI_PREFIX)


def render_dynamic(path, salt=0):
    """The 'application logic' behind a dynamic path.

    A pure function of path and salt — crc32-chained rows standing in
    for template rendering — so reruns, scheduler differentials and
    cache-hit comparisons all see byte-identical bodies.
    """
    name = path[len(CGI_PREFIX):] or "index"
    digest = zlib.crc32(path.encode("latin-1"), salt & 0xFFFFFFFF)
    rows = []
    for i in range(8):
        digest = zlib.crc32(name.encode("latin-1"), digest)
        rows.append(f"<tr><td>{i}</td><td>{digest:08x}</td></tr>")
    return (f"<html><body><h1>cgi:{name}</h1>"
            f"<table>{''.join(rows)}</table></body></html>"
            ).encode("latin-1")


def build_request(path):
    return (f"GET {path} HTTP/1.0\r\n"
            f"Host: wedge\r\n\r\n").encode()


def response_body(response):
    """Split a response's body out (client-side convenience)."""
    idx = response.find(_TERMINATOR)
    if idx < 0:
        raise ProtocolError("malformed response")
    return response[idx + len(_TERMINATOR):]
