"""Vanilla httpd: the unpartitioned Apache/OpenSSL baseline.

Everything — ClientHello parsing, RSA private-key operations, session-key
derivation, record crypto, request handling — runs in one fully
privileged compartment, and the private key sits in that compartment's
ordinary heap.  An exploit anywhere (the hello parser here) "could cause
anything in the process's memory, including passwords and e-mails, to be
leaked" (paper section 2); the security tests demonstrate exactly that by
scanning the hijacked compartment's memory for the key.

It is also the *fast* baseline: a pool-style worker (no per-request
compartment creation) gives the "Vanilla" row of Table 2.
"""

from __future__ import annotations

import zlib

from repro.apps.httpd import content
from repro.apps.httpd.common import HttpdBase
from repro.attacks.exploit import maybe_trigger_exploit
from repro.core.errors import (CompartmentDown, ProtocolError,
                               SthreadFaulted, WedgeError)
from repro.core.policy import PROT_RW, SecurityContext, sc_mem_add
from repro.tls.records import RT_APPDATA, KernelSocketTransport
from repro.tls.server_core import ServerHandshake
from repro.tls.session_cache import SessionCache

#: Dynamic-content handler modes: ``disposable`` runs each request in a
#: fresh sthread whose entire privilege is one per-request tag, freed on
#: exit; ``inline`` is the monolithic contrast — the handler renders on a
#: persistent heap scratch buffer whose residue outlives the request.
CGI_DISPOSABLE = "disposable"
CGI_INLINE = "inline"


class MonolithicHttpd(HttpdBase):
    """The ``Vanilla`` column of Table 2.

    Two additions ride on this variant (it is the cluster's backend):

    * **dynamic content** under :data:`~repro.apps.httpd.content.CGI_PREFIX`,
      rendered — by default — in a *disposable sthread* over a
      request-tagged scratch region.  The tag is deleted when the
      request completes, so one handler can never read another
      request's scratch, and a faulted handler becomes a 500 without
      touching the server.  ``cgi_mode="inline"`` keeps the handler in
      this fully privileged compartment instead, leaving residue.
    * an optional **cache-aside client** (``cache_addr=``) against the
      kv tier, keyed on the request path with seeded TTL jitter;
      outages and sheds degrade to cache misses.
    """

    variant = "monolithic"

    def __init__(self, network, addr, *, cache_addr=None, cache_seed=0,
                 cgi_mode=CGI_DISPOSABLE, **kwargs):
        super().__init__(network, addr, **kwargs)
        self.session_cache = SessionCache()
        # the private key lives in ordinary (untagged) process memory —
        # the paper's point about monolithic designs
        key_bytes = self.private_key.to_bytes()
        self.key_buf = self.kernel.alloc_buf(len(key_bytes),
                                             init=key_bytes)
        if cgi_mode not in (CGI_DISPOSABLE, CGI_INLINE):
            raise WedgeError(f"unknown cgi_mode {cgi_mode!r}")
        self.cgi_mode = cgi_mode
        self._cgi_salt = zlib.crc32(
            str(kwargs.get("seed", "httpd")).encode())
        self._cgi_serial = 0
        self._cgi_scratch = None    # inline mode's persistent buffer
        self._last_cgi = None       # previous request's scratch window
        self.cache = None
        if cache_addr is not None:
            from repro.apps.kv.client import KvCacheClient
            self.cache = KvCacheClient(self.kernel, cache_addr,
                                       seed=cache_seed)

    def handle_connection(self, conn_fd):
        transport = KernelSocketTransport(self.kernel, conn_fd)
        # like any real server, the key is *loaded from process memory*
        # when the handshake needs it — which is why a memory-disclosure
        # exploit anywhere in this compartment obtains it
        from repro.crypto.rsa import RsaPrivateKey
        key = RsaPrivateKey.from_bytes(self.key_buf.read())
        handshake = ServerHandshake(
            transport, key, self.conn_rng(),
            session_cache=self.session_cache,
            on_client_hello=lambda hello: self._parse_hello_vuln(
                hello, conn_fd))
        channel = handshake.run()
        self._serve_requests(channel, conn_fd)

    def _parse_hello_vuln(self, hello, conn_fd):
        """The simulated parser vulnerability, fully privileged here."""
        maybe_trigger_exploit(self.kernel, hello.extensions, context={
            "variant": self.variant,
            "fd": conn_fd,
            "kernel": self.kernel,
            "key_buf": self.key_buf,
        })

    def _serve_requests(self, channel, conn_fd):
        kernel = self.kernel
        # the request accumulates in a heap buffer, as in any real
        # server — visible to cb-log and to memory-disclosure exploits
        scratch = kernel.malloc(4096)
        length = 0
        while True:
            rtype, payload = channel.recv_record()
            if rtype != RT_APPDATA:
                raise ProtocolError(f"unexpected record type {rtype}")
            if length + len(payload) > 4096:
                raise ProtocolError("request too large")
            kernel.mem_write(scratch + length, payload)
            length += len(payload)
            if content.request_complete(
                    kernel.mem_read(scratch, length)):
                break
        request = kernel.mem_read(scratch, length)
        # request parsing: the second untrusted-input surface
        maybe_trigger_exploit(kernel, request, context={
            "variant": self.variant,
            "fd": conn_fd,
            "kernel": kernel,
            "key_buf": self.key_buf,
        })
        channel.send_record(RT_APPDATA, self.respond_to(request))
        kernel.free(scratch)

    # -- dynamic content and the cache-aside path --------------------------

    def respond_to(self, request_bytes):
        path = content.parse_request(request_bytes)
        self.requests_served += 1
        if not content.is_dynamic(path):
            return content.build_response(self.pages, path)
        if self.cache is not None:
            hit = self.cache.lookup(path)
            if hit is not None:
                return hit
        body = self._render_cgi(path)
        if body is None:
            return content.http_response(
                b"500 Internal Server Error",
                b"<html><body>handler failed</body></html>")
        response = content.http_response(b"200 OK", body)
        if self.cache is not None:
            self.cache.store(path, response)
        return response

    def _render_cgi(self, path):
        """Render one dynamic request; ``None`` means the handler died."""
        if self.cgi_mode == CGI_INLINE:
            return self._render_cgi_inline(path)
        return self._render_cgi_disposable(path)

    def _render_cgi_inline(self, path):
        """The monolithic contrast: render on a persistent heap buffer.

        The scratch is allocated once and never scrubbed, so residue
        from each request survives into the next — and into the hands
        of any exploit in this fully privileged compartment.
        """
        kernel = self.kernel
        if self._cgi_scratch is None:
            self._cgi_scratch = kernel.alloc_buf(content.CGI_REGION)
        maybe_trigger_exploit(kernel, path.encode("latin-1"), context={
            "variant": self.variant,
            "cgi_mode": CGI_INLINE,
            "kernel": kernel,
            "addr": self._cgi_scratch.addr,
            "prev": self._last_cgi,
            "key_buf": self.key_buf,
        })
        body = content.render_dynamic(path, self._cgi_salt)
        kernel.mem_write(self._cgi_scratch.addr,
                         len(body).to_bytes(2, "big") + body)
        self._last_cgi = {"addr": self._cgi_scratch.addr,
                          "len": content.CGI_REGION,
                          "tag": "heap"}
        return body

    def _render_cgi_disposable(self, path):
        """One request, one sthread, one tag — deleted on the way out."""
        kernel = self.kernel
        serial = self._cgi_serial
        self._cgi_serial += 1
        tag = kernel.tag_new(name=f"httpd-cgi{serial}")
        buf = kernel.alloc_buf(content.CGI_REGION, tag=tag)
        sc = SecurityContext()
        sc_mem_add(sc, tag, PROT_RW)
        prev, self._last_cgi = self._last_cgi, {
            "addr": buf.addr, "len": content.CGI_REGION,
            "tag": f"httpd-cgi{serial}"}
        handler = kernel.sthread_create(
            sc, self._cgi_body,
            {"path": path, "addr": buf.addr, "prev": prev},
            name=f"cgi{serial}", spawn="thread",
            supervise=self.supervise)
        try:
            kernel.sthread_join(handler, timeout=20.0)
            raw = buf.read()
            return bytes(raw[2:2 + int.from_bytes(raw[:2], "big")])
        except (SthreadFaulted, CompartmentDown) as exc:
            # contained: the request dies with its handler
            self.errors.append(f"cgi handler faulted: {exc}")
            return None
        finally:
            kernel.tag_delete(tag)

    def _cgi_body(self, arg):
        """Runs inside the disposable sthread: render, write, exit.

        Its page table maps exactly one tag — this request's scratch.
        The path is the untrusted input here (a real CGI parses a query
        string), so it carries the exploit hook like the other parsers.
        """
        kernel = self.kernel
        maybe_trigger_exploit(kernel, arg["path"].encode("latin-1"),
                              context={
                                  "variant": self.variant,
                                  "cgi_mode": CGI_DISPOSABLE,
                                  "kernel": kernel,
                                  "addr": arg["addr"],
                                  "prev": arg["prev"],
                                  "key_buf": self.key_buf,
                              })
        body = content.render_dynamic(arg["path"], self._cgi_salt)
        kernel.mem_write(arg["addr"],
                         len(body).to_bytes(2, "big") + body)

    def stop(self):
        if self.cache is not None:
            self.cache.close()
        super().stop()
