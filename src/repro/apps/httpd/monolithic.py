"""Vanilla httpd: the unpartitioned Apache/OpenSSL baseline.

Everything — ClientHello parsing, RSA private-key operations, session-key
derivation, record crypto, request handling — runs in one fully
privileged compartment, and the private key sits in that compartment's
ordinary heap.  An exploit anywhere (the hello parser here) "could cause
anything in the process's memory, including passwords and e-mails, to be
leaked" (paper section 2); the security tests demonstrate exactly that by
scanning the hijacked compartment's memory for the key.

It is also the *fast* baseline: a pool-style worker (no per-request
compartment creation) gives the "Vanilla" row of Table 2.
"""

from __future__ import annotations

from repro.apps.httpd import content
from repro.apps.httpd.common import HttpdBase
from repro.attacks.exploit import maybe_trigger_exploit
from repro.core.errors import ProtocolError
from repro.tls.records import RT_APPDATA, KernelSocketTransport
from repro.tls.server_core import ServerHandshake
from repro.tls.session_cache import SessionCache


class MonolithicHttpd(HttpdBase):
    """The ``Vanilla`` column of Table 2."""

    variant = "monolithic"

    def __init__(self, network, addr, **kwargs):
        super().__init__(network, addr, **kwargs)
        self.session_cache = SessionCache()
        # the private key lives in ordinary (untagged) process memory —
        # the paper's point about monolithic designs
        key_bytes = self.private_key.to_bytes()
        self.key_buf = self.kernel.alloc_buf(len(key_bytes),
                                             init=key_bytes)

    def handle_connection(self, conn_fd):
        transport = KernelSocketTransport(self.kernel, conn_fd)
        # like any real server, the key is *loaded from process memory*
        # when the handshake needs it — which is why a memory-disclosure
        # exploit anywhere in this compartment obtains it
        from repro.crypto.rsa import RsaPrivateKey
        key = RsaPrivateKey.from_bytes(self.key_buf.read())
        handshake = ServerHandshake(
            transport, key, self.conn_rng(),
            session_cache=self.session_cache,
            on_client_hello=lambda hello: self._parse_hello_vuln(
                hello, conn_fd))
        channel = handshake.run()
        self._serve_requests(channel, conn_fd)

    def _parse_hello_vuln(self, hello, conn_fd):
        """The simulated parser vulnerability, fully privileged here."""
        maybe_trigger_exploit(self.kernel, hello.extensions, context={
            "variant": self.variant,
            "fd": conn_fd,
            "kernel": self.kernel,
            "key_buf": self.key_buf,
        })

    def _serve_requests(self, channel, conn_fd):
        kernel = self.kernel
        # the request accumulates in a heap buffer, as in any real
        # server — visible to cb-log and to memory-disclosure exploits
        scratch = kernel.malloc(4096)
        length = 0
        while True:
            rtype, payload = channel.recv_record()
            if rtype != RT_APPDATA:
                raise ProtocolError(f"unexpected record type {rtype}")
            if length + len(payload) > 4096:
                raise ProtocolError("request too large")
            kernel.mem_write(scratch + length, payload)
            length += len(payload)
            if content.request_complete(
                    kernel.mem_read(scratch, length)):
                break
        request = kernel.mem_read(scratch, length)
        # request parsing: the second untrusted-input surface
        maybe_trigger_exploit(kernel, request, context={
            "variant": self.variant,
            "fd": conn_fd,
            "kernel": kernel,
            "key_buf": self.key_buf,
        })
        channel.send_record(RT_APPDATA, self.respond_to(request))
        kernel.free(scratch)
