"""Shared httpd plumbing: configuration, tagged session state, base class.

The interesting piece is :class:`SessionState`: the per-connection SSL
state (master secret, the four channel keys, sequence numbers, the
handshake-complete flag) laid out at fixed offsets in **tagged simulated
memory**.  Which compartments can read or write this block is exactly
what distinguishes the three Apache partitionings — in the Figures-3-5
variant only the callgates hold the tag, so the network-facing handshake
sthread manipulates session keys it can never observe.
"""

from __future__ import annotations

import threading

from repro.apps.httpd import content
from repro.core.errors import WedgeError
from repro.core.kernel import Kernel
from repro.net.serve import start_accept_loop
from repro.crypto.prf import MASTER_SECRET_LEN
from repro.crypto.rng import DetRNG
from repro.crypto.rsa import generate_keypair

# -- SessionState field layout (fixed offsets in the session tag) -----------

_OFF_MASTER = 0
_OFF_CLIENT_MAC = 48
_OFF_SERVER_MAC = 80
_OFF_CLIENT_ENC = 112
_OFF_SERVER_ENC = 144
_OFF_RECV_SEQ = 176
_OFF_SEND_SEQ = 184
_OFF_FLAGS = 192
_OFF_CLIENT_RANDOM = 200
_OFF_SERVER_RANDOM = 232
STATE_SIZE = 264

_FLAG_KEYS_READY = 1
_FLAG_HANDSHAKE_DONE = 2


class SessionState:
    """Typed accessors over the session-state block at *addr*.

    Methods go through ``kernel.mem_read``/``mem_write`` under the
    *current compartment*, so every access is permission-checked: a
    compartment without the session tag faults on the first touch.
    """

    def __init__(self, kernel, addr):
        self.kernel = kernel
        self.addr = addr

    # -- key material --------------------------------------------------------

    def write_keys(self, master, keys):
        k = self.kernel
        k.mem_write(self.addr + _OFF_MASTER, master)
        k.mem_write(self.addr + _OFF_CLIENT_MAC, keys["client_mac"])
        k.mem_write(self.addr + _OFF_SERVER_MAC, keys["server_mac"])
        k.mem_write(self.addr + _OFF_CLIENT_ENC, keys["client_enc"])
        k.mem_write(self.addr + _OFF_SERVER_ENC, keys["server_enc"])
        self._set_flag(_FLAG_KEYS_READY)

    def read_master(self):
        return self.kernel.mem_read(self.addr + _OFF_MASTER,
                                    MASTER_SECRET_LEN)

    def read_keys(self):
        k = self.kernel
        return {
            "client_mac": k.mem_read(self.addr + _OFF_CLIENT_MAC, 32),
            "server_mac": k.mem_read(self.addr + _OFF_SERVER_MAC, 32),
            "client_enc": k.mem_read(self.addr + _OFF_CLIENT_ENC, 32),
            "server_enc": k.mem_read(self.addr + _OFF_SERVER_ENC, 32),
        }

    # -- sequence numbers -------------------------------------------------------

    def _read_u64(self, off):
        return int.from_bytes(self.kernel.mem_read(self.addr + off, 8),
                              "big")

    def _write_u64(self, off, value):
        self.kernel.mem_write(self.addr + off, value.to_bytes(8, "big"))

    def next_recv_seq(self):
        seq = self._read_u64(_OFF_RECV_SEQ)
        self._write_u64(_OFF_RECV_SEQ, seq + 1)
        return seq

    def next_send_seq(self):
        seq = self._read_u64(_OFF_SEND_SEQ)
        self._write_u64(_OFF_SEND_SEQ, seq + 1)
        return seq

    def peek_recv_seq(self):
        """Current receive sequence *without* consuming it.

        Gates that verify inbound records (``receive_finished``,
        ``ssl_read``) commit the sequence only when verification
        succeeds: an injected record is dropped without desynchronising
        the channel (paper section 5.1.2, "dropped by SSL read").
        """
        return self._read_u64(_OFF_RECV_SEQ)

    def commit_recv_seq(self, seq):
        self._write_u64(_OFF_RECV_SEQ, seq + 1)

    # -- randoms -------------------------------------------------------------------

    def write_randoms(self, client_random, server_random):
        self.kernel.mem_write(self.addr + _OFF_CLIENT_RANDOM,
                              client_random)
        self.kernel.mem_write(self.addr + _OFF_SERVER_RANDOM,
                              server_random)

    def read_randoms(self):
        return (self.kernel.mem_read(self.addr + _OFF_CLIENT_RANDOM, 32),
                self.kernel.mem_read(self.addr + _OFF_SERVER_RANDOM, 32))

    # -- flags ----------------------------------------------------------------------

    def _set_flag(self, flag):
        flags = self.kernel.mem_read(self.addr + _OFF_FLAGS, 1)[0]
        self.kernel.mem_write(self.addr + _OFF_FLAGS,
                              bytes([flags | flag]))

    def keys_ready(self):
        return bool(self.kernel.mem_read(self.addr + _OFF_FLAGS, 1)[0]
                    & _FLAG_KEYS_READY)

    def mark_handshake_done(self):
        self._set_flag(_FLAG_HANDSHAKE_DONE)

    def handshake_done(self):
        return bool(self.kernel.mem_read(self.addr + _OFF_FLAGS, 1)[0]
                    & _FLAG_HANDSHAKE_DONE)


class HttpdBase:
    """Common scaffolding for the three Apache variants.

    Owns the kernel, the listener, the server RSA key (in tagged
    memory), the accept loop thread, and per-variant statistics the
    benchmarks read.
    """

    variant = "base"

    def __init__(self, network, addr, *, pages=None, seed="httpd",
                 tag_cache=True, key_bits=512, concurrent=False,
                 supervise=None, kernel=None, instance=None):
        self.network = network
        self.addr = addr
        self.pages = dict(pages or content.DEFAULT_PAGES)
        self.rng = DetRNG(seed)
        #: per-replica entropy label: cluster replicas share *seed* (one
        #: RSA identity for the whole cluster) but must not mint
        #: colliding TLS session ids — a failover resumption against a
        #: twin's cache would pair the wrong master secret with a known
        #: session id and die in the Finished check
        self.instance = instance
        #: serve connections concurrently (one master-side dispatcher
        #: per connection, like the paper's per-connection workers); the
        #: default stays sequential for deterministic tests
        self.concurrent = concurrent
        #: optional RestartPolicy applied to per-connection compartments
        self.supervise = supervise
        if kernel is not None:
            # cluster mode: several replicas share one host kernel
            self.kernel = kernel
            self.main = (kernel.main if kernel.main is not None
                         else kernel.start_main())
        else:
            self.kernel = Kernel(net=network, tag_cache=tag_cache,
                                 name=f"httpd-{self.variant}")
            self.main = self.kernel.start_main()
        # the server's long-lived RSA key pair, generated at startup
        self.private_key = generate_keypair(self.rng.fork("rsa"),
                                            key_bits)
        self.public_key = self.private_key.public()
        self._listen_fd = None
        self._accept_runner = None
        self._stop = threading.Event()
        self.connections_served = 0
        self.requests_served = 0
        self.errors = []

    # -- lifecycle ---------------------------------------------------------------

    def start(self):
        """Bind the listener and start accepting connections."""
        if self._accept_runner is not None:
            raise WedgeError("server already started")
        self._listen_fd = self.kernel.listen(self.addr)
        self._accept_runner = start_accept_loop(
            self.kernel, self._listen_fd, self._on_conn,
            stop=self._stop, name=f"{self.variant}-accept",
            concurrent=self.concurrent)
        return self

    def stop(self):
        self._stop.set()
        try:
            self.kernel.close(self._listen_fd)
        except WedgeError:
            pass
        if self._accept_runner is not None:
            self._accept_runner.join(5.0)

    def _on_conn(self, conn_fd):
        self.connections_served += 1
        if self.kernel.scheduler == "reactor" and not self.concurrent:
            return self._co_connection(conn_fd)
        return lambda: self._handle_safely(conn_fd)

    def _co_connection(self, conn_fd):
        """Cooperative connection job — the default under the reactor.

        The acceptor task parks here until the client's first bytes
        arrive (a connection that never speaks costs no pool thread
        while it dawdles), then serves the connection *inline*.  The
        handler itself stays ordinary blocking code: first-byte
        readiness means its opening read returns immediately, and the
        single-task sequencing — accept, wait, serve, accept — is the
        same serving order as the threaded oracle, so the scheduler
        differential suite keeps comparing byte-for-byte.
        """
        try:
            yield from self.kernel.co_wait_readable(conn_fd)
        except WedgeError:
            pass    # timed out or reset: the handler's read reports it
        self._handle_safely(conn_fd)

    def _serve_cycle(self):
        """Analysis root: one accept-serve cycle.

        This is the privilege envelope of the accept loop — identical
        syscall/descriptor surface whichever runner (thread or reactor)
        drives it; the policy verifier analyzes this instead of the
        scheduler-specific loop plumbing in repro.net.serve.
        """
        conn_fd = self.kernel.accept(self._listen_fd, timeout=0.5)
        self.connections_served += 1
        self._handle_safely(conn_fd)

    def _handle_safely(self, conn_fd):
        try:
            self.handle_connection(conn_fd)
        except WedgeError as exc:
            self.errors.append(f"{type(exc).__name__}: {exc}")
        finally:
            try:
                self.kernel.close(conn_fd)
            except WedgeError:
                pass

    def handle_connection(self, conn_fd):
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------

    def conn_rng(self):
        """The per-connection RNG fork (instance-salted in a cluster)."""
        label = f"conn{self.connections_served}"
        if self.instance is not None:
            label = f"{self.instance}-{label}"
        return self.rng.fork(label)

    def respond_to(self, request_bytes):
        """Parse a complete request and build its response."""
        path = content.parse_request(request_bytes)
        self.requests_served += 1
        return content.build_response(self.pages, path)
