"""A small POP3 client for the examples and tests."""

from __future__ import annotations

from repro.core.errors import ProtocolError


class Pop3Client:
    def __init__(self, network, addr, timeout=10.0):
        self.sock = network.connect(addr)
        self.timeout = timeout
        self._buf = bytearray()
        greeting = self._readline()
        if not greeting.startswith(b"+OK"):
            raise ProtocolError(f"bad greeting: {greeting!r}")

    def _readline(self):
        while b"\r\n" not in self._buf:
            chunk = self.sock.recv(4096, self.timeout)
            if chunk is None:
                raise ProtocolError("server closed the connection")
            self._buf += chunk
        line, _, rest = bytes(self._buf).partition(b"\r\n")
        self._buf = bytearray(rest)
        return line

    def _command(self, line):
        self.sock.send(line + b"\r\n")
        return self._readline()

    def login(self, user, password):
        reply = self._command(b"USER " + user.encode())
        if not reply.startswith(b"+OK"):
            raise ProtocolError(f"USER rejected: {reply!r}")
        reply = self._command(b"PASS " + password)
        return reply.startswith(b"+OK")

    def list_messages(self):
        reply = self._command(b"LIST")
        if not reply.startswith(b"+OK"):
            raise ProtocolError(f"LIST failed: {reply!r}")
        sizes = []
        while True:
            line = self._readline()
            if line == b".":
                return sizes
            _, size = line.split(b" ")
            sizes.append(int(size))

    def retrieve(self, index):
        reply = self._command(f"RETR {index}".encode())
        if not reply.startswith(b"+OK"):
            raise ProtocolError(f"RETR failed: {reply!r}")
        while b"\r\n.\r\n" not in self._buf:
            chunk = self.sock.recv(4096, self.timeout)
            if chunk is None:
                raise ProtocolError("server closed mid-message")
            self._buf += chunk
        body, _, rest = bytes(self._buf).partition(b"\r\n.\r\n")
        self._buf = bytearray(rest)
        return body

    def raw_command(self, line):
        """Send an arbitrary line (attack vector for the exploit tests)."""
        return self._command(line)

    def quit(self):
        try:
            self._command(b"QUIT")
        finally:
            self.sock.close()
