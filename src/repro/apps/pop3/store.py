"""POP3 data model: the password database and mail spool as bytes.

Figure 1 draws them as memory regions, so they are stored in tagged
simulated memory as serialised blobs; the callgates deserialise on each
use.  Format (line-oriented, latin-1 safe):

.. code-block:: none

    passwords:  user:uid:password\n ...
    spool:      uid:base64ish-hex-of-message\n ...
"""

from __future__ import annotations

from repro.core.errors import ProtocolError

DEFAULT_ACCOUNTS = {
    "alice": (1000, b"wonderland"),
    "bob": (1001, b"builder"),
}

DEFAULT_MAIL = {
    1000: [b"From: queen@hearts\nSubject: tarts\n\nWho stole them?",
           b"From: hatter@tea\nSubject: party\n\nYou're late."],
    1001: [b"From: wendy@site\nSubject: fix it\n\nCan we?"],
}


def serialize_passwords(accounts):
    lines = []
    for user, (uid, password) in sorted(accounts.items()):
        lines.append(f"{user}:{uid}:".encode() + password)
    return b"\n".join(lines) + b"\n"


def parse_passwords(blob):
    accounts = {}
    for line in blob.split(b"\n"):
        line = line.rstrip(b"\x00")
        if not line.strip():
            continue
        try:
            user, uid, password = line.split(b":", 2)
            accounts[user.decode()] = (int(uid), password)
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError("corrupt password database") from exc
    return accounts


def serialize_spool(mail):
    lines = []
    for uid, messages in sorted(mail.items()):
        for message in messages:
            lines.append(f"{uid}:".encode() + message.hex().encode())
    return b"\n".join(lines) + b"\n"


def parse_spool(blob):
    mail = {}
    for line in blob.split(b"\n"):
        line = line.rstrip(b"\x00")
        if not line.strip():
            continue
        uid, hexed = line.split(b":", 1)
        mail.setdefault(int(uid), []).append(bytes.fromhex(hexed.decode()))
    return mail
