"""The POP3 server of paper section 2, monolithic and partitioned.

The partitioned layout is exactly Figure 1:

* the **client handler** sthread parses POP3 commands — it is "a target
  for exploits because it processes untrusted network input" and runs
  with *no* access to passwords or mail;
* the **login** callgate reads the password database and, on success,
  writes the authenticated uid into a small shared memory region it
  alone can write;
* the **e-mail retriever** callgate reads the mail spool and the uid
  region, and returns only the e-mails of the uid that *login* recorded
  — "authentication cannot be skipped since the e-mail retriever will
  only read e-mails of the user id specified in uid, and this can only
  be set by the login component."

The monolithic variant runs the same command loop with everything
readable in one compartment — an exploit there yields all passwords and
all mail.
"""

from __future__ import annotations

import threading

from repro.apps.pop3 import store
from repro.attacks.exploit import maybe_trigger_exploit
from repro.core.errors import (CallgateError, CompartmentDown,
                               ProtocolError, SthreadFaulted, WedgeError)
from repro.core.kernel import Kernel
from repro.core.memory import PROT_READ, PROT_RW
from repro.net.serve import start_accept_loop
from repro.core.policy import (FD_RW, SecurityContext, sc_cgate_add,
                               sc_fd_add, sc_mem_add)

GREETING = b"+OK wedge-pop3 ready\r\n"
UID_REGION_SIZE = 8


# -- callgate entry points ----------------------------------------------------

def login_gate(trusted, arg):
    """Authenticate; record the uid in the shared uid region."""
    kernel = trusted["kernel"]
    accounts = store.parse_passwords(
        kernel.mem_read(trusted["pw_addr"], trusted["pw_len"]))
    entry = accounts.get(str(arg["user"]))
    if entry is None or entry[1] != bytes(arg["password"]):
        return {"ok": False}
    uid = entry[0]
    kernel.mem_write(trusted["uid_addr"], uid.to_bytes(UID_REGION_SIZE,
                                                       "big"))
    return {"ok": True}


def retrieve_gate(trusted, arg):
    """List or fetch mail — only for the uid the login gate recorded."""
    kernel = trusted["kernel"]
    uid = int.from_bytes(kernel.mem_read(trusted["uid_addr"],
                                         UID_REGION_SIZE), "big")
    if uid == 0:
        return {"ok": False, "error": "not authenticated"}
    spool = store.parse_spool(
        kernel.mem_read(trusted["mail_addr"], trusted["mail_len"]))
    messages = spool.get(uid, [])
    if arg.get("op") == "list":
        return {"ok": True, "sizes": [len(m) for m in messages]}
    if arg.get("op") == "retr":
        index = int(arg["index"])
        if not 1 <= index <= len(messages):
            return {"ok": False, "error": "no such message"}
        return {"ok": True, "message": messages[index - 1]}
    return {"ok": False, "error": "bad op"}


# -- the command loop (shared by both variants) ----------------------------------


class Pop3CommandLoop:
    """Line-oriented POP3 over a kernel fd; auth/mail via an adapter."""

    def __init__(self, kernel, fd, adapter, exploit_context):
        self.kernel = kernel
        self.fd = fd
        self.adapter = adapter
        self.exploit_context = exploit_context
        self._buf = bytearray()
        self.pending_user = None

    def _readline(self):
        while b"\r\n" not in self._buf:
            self._buf += self.kernel.recv(self.fd, 4096, timeout=10.0)
        line, _, rest = bytes(self._buf).partition(b"\r\n")
        self._buf = bytearray(rest)
        return line

    def _send(self, line):
        self.kernel.send(self.fd, line + b"\r\n")

    def run(self):
        self._send(GREETING.rstrip(b"\r\n"))
        while True:
            line = self._readline()
            # the untrusted-input surface of Figure 1's client handler
            maybe_trigger_exploit(self.kernel, line,
                                  context=self.exploit_context)
            try:
                if not self._dispatch(line):
                    return "closed"
            except ProtocolError as exc:
                self._send(b"-ERR " + str(exc).encode())

    def _dispatch(self, line):
        parts = line.decode("latin-1").split(" ", 1)
        cmd = parts[0].upper()
        rest = parts[1] if len(parts) > 1 else ""
        if cmd == "USER":
            self.pending_user = rest
            self._send(b"+OK send PASS")
        elif cmd == "PASS":
            if self.pending_user is None:
                self._send(b"-ERR send USER first")
            elif self.adapter.login(self.pending_user, rest.encode()):
                self._send(b"+OK mailbox open")
            else:
                self._send(b"-ERR authentication failed")
        elif cmd == "LIST":
            ok, sizes_or_err = self.adapter.list_messages()
            if not ok:
                self._send(b"-ERR " + sizes_or_err.encode())
            else:
                self._send(f"+OK {len(sizes_or_err)} messages".encode())
                for i, size in enumerate(sizes_or_err, 1):
                    self._send(f"{i} {size}".encode())
                self._send(b".")
        elif cmd == "RETR":
            ok, msg_or_err = self.adapter.fetch(rest)
            if not ok:
                self._send(b"-ERR " + msg_or_err.encode())
            else:
                self._send(b"+OK message follows")
                self.kernel.send(self.fd, msg_or_err + b"\r\n.\r\n")
        elif cmd == "QUIT":
            self._send(b"+OK bye")
            return False
        else:
            self._send(b"-ERR unknown command")
        return True


class GateAdapter:
    """Client-handler-side adapter: everything goes through the gates."""

    def __init__(self, kernel, login_id, retrieve_id):
        self.kernel = kernel
        self.login_id = login_id
        self.retrieve_id = retrieve_id

    def login(self, user, password):
        try:
            reply = self.kernel.cgate(self.login_id, None,
                                      {"user": user, "password": password})
        except (CallgateError, CompartmentDown):
            return False   # a dead login gate denies, it never grants
        return reply["ok"]

    def list_messages(self):
        try:
            reply = self.kernel.cgate(self.retrieve_id, None,
                                      {"op": "list"})
        except (CallgateError, CompartmentDown):
            return False, "service unavailable"
        if not reply["ok"]:
            return False, reply.get("error", "failed")
        return True, reply["sizes"]

    def fetch(self, index_str):
        try:
            index = int(index_str)
        except ValueError:
            return False, "bad message number"
        try:
            reply = self.kernel.cgate(self.retrieve_id, None,
                                      {"op": "retr", "index": index})
        except (CallgateError, CompartmentDown):
            return False, "service unavailable"
        if not reply["ok"]:
            return False, reply.get("error", "failed")
        return True, reply["message"]


class DirectAdapter:
    """Monolithic adapter: reads the blobs with its own privileges."""

    def __init__(self, kernel, pw_buf, mail_buf):
        self.kernel = kernel
        self.pw_buf = pw_buf
        self.mail_buf = mail_buf
        self.uid = 0

    def login(self, user, password):
        accounts = store.parse_passwords(self.pw_buf.read())
        entry = accounts.get(user)
        if entry is None or entry[1] != password:
            return False
        self.uid = entry[0]
        return True

    def _spool(self):
        return store.parse_spool(self.mail_buf.read()).get(self.uid, [])

    def list_messages(self):
        if self.uid == 0:
            return False, "not authenticated"
        return True, [len(m) for m in self._spool()]

    def fetch(self, index_str):
        if self.uid == 0:
            return False, "not authenticated"
        messages = self._spool()
        try:
            index = int(index_str)
        except ValueError:
            return False, "bad message number"
        if not 1 <= index <= len(messages):
            return False, "no such message"
        return True, messages[index - 1]


# -- the servers ---------------------------------------------------------------------


class Pop3Base:
    variant = "base"

    def __init__(self, network, addr, *, accounts=None, mail=None,
                 partitioned=True, supervise=None):
        self.network = network
        self.addr = addr
        #: optional RestartPolicy applied to per-connection handlers
        self.supervise = supervise
        self.kernel = Kernel(net=network, name=f"pop3-{self.variant}")
        self.main = self.kernel.start_main()
        self.accounts = dict(accounts or store.DEFAULT_ACCOUNTS)
        self.mail = dict(mail or store.DEFAULT_MAIL)
        self._listen_fd = None
        self._accept_runner = None
        self._stop = threading.Event()
        self.connections_served = 0
        self.errors = []
        self._install_data()

    def _install_data(self):
        raise NotImplementedError

    def start(self):
        self._listen_fd = self.kernel.listen(self.addr)
        self._accept_runner = start_accept_loop(
            self.kernel, self._listen_fd, self._on_conn,
            stop=self._stop, name=f"pop3-{self.variant}-accept")
        return self

    def stop(self):
        self._stop.set()
        try:
            self.kernel.close(self._listen_fd)
        except WedgeError:
            pass
        if self._accept_runner is not None:
            self._accept_runner.join(5.0)

    def _on_conn(self, conn_fd):
        self.connections_served += 1
        return lambda: self._handle_safely(conn_fd)

    def _handle_safely(self, conn_fd):
        try:
            self.handle_connection(conn_fd)
        except WedgeError as exc:
            self.errors.append(f"{type(exc).__name__}: {exc}")
        finally:
            try:
                self.kernel.close(conn_fd)
            except WedgeError:
                pass


class MonolithicPop3(Pop3Base):
    """All three roles in one compartment; blobs in plain heap memory."""

    variant = "monolithic"

    def _install_data(self):
        pw = store.serialize_passwords(self.accounts)
        spool = store.serialize_spool(self.mail)
        self.pw_buf = self.kernel.alloc_buf(len(pw), init=pw)
        self.mail_buf = self.kernel.alloc_buf(len(spool), init=spool)

    def handle_connection(self, conn_fd):
        adapter = DirectAdapter(self.kernel, self.pw_buf, self.mail_buf)
        loop = Pop3CommandLoop(self.kernel, conn_fd, adapter, {
            "variant": self.variant,
            "kernel": self.kernel,
            "fd": conn_fd,
            "pw_buf": self.pw_buf,
            "mail_buf": self.mail_buf,
        })
        loop.run()


class PartitionedPop3(Pop3Base):
    """Figure 1: client handler sthread + login and retrieve callgates."""

    variant = "partitioned"

    def _install_data(self):
        kernel = self.kernel
        pw = store.serialize_passwords(self.accounts)
        spool = store.serialize_spool(self.mail)
        self.pw_tag = kernel.tag_new(name="pop3-passwords")
        self.mail_tag = kernel.tag_new(name="pop3-mail")
        self.pw_buf = kernel.alloc_buf(len(pw), tag=self.pw_tag, init=pw)
        self.mail_buf = kernel.alloc_buf(len(spool), tag=self.mail_tag,
                                         init=spool)
        self.handlers = []

    def _connection_contexts(self, conn_fd):
        """Per-connection uid region + the handler's SecurityContext."""
        kernel = self.kernel
        # per-connection uid region, writable only by the login gate
        uid_tag = kernel.tag_new(name=f"pop3-uid{self.connections_served}")
        uid_buf = kernel.alloc_buf(UID_REGION_SIZE, tag=uid_tag,
                                   init=bytes(UID_REGION_SIZE))
        trusted = {
            "kernel": kernel,
            "pw_addr": self.pw_buf.addr, "pw_len": self.pw_buf.size,
            "mail_addr": self.mail_buf.addr,
            "mail_len": self.mail_buf.size,
            "uid_addr": uid_buf.addr,
        }
        sc = SecurityContext()
        sc_fd_add(sc, conn_fd, FD_RW)
        login_sc = SecurityContext()
        sc_mem_add(login_sc, self.pw_tag, PROT_READ)
        sc_mem_add(login_sc, uid_tag, PROT_RW)
        sc_cgate_add(sc, login_gate, login_sc, trusted,
                     supervise=self.supervise)
        retr_sc = SecurityContext()
        sc_mem_add(retr_sc, self.mail_tag, PROT_READ)
        sc_mem_add(retr_sc, uid_tag, PROT_READ)
        sc_cgate_add(sc, retrieve_gate, retr_sc, trusted,
                     supervise=self.supervise)
        return sc, uid_tag, uid_buf

    def handle_connection(self, conn_fd):
        kernel = self.kernel
        sc, uid_tag, uid_buf = self._connection_contexts(conn_fd)

        handler = kernel.sthread_create(
            sc, self._handler_body,
            {"fd": conn_fd, "uid_addr": uid_buf.addr},
            name=f"pop3-handler{self.connections_served}", spawn="thread",
            supervise=self.supervise)
        self.handlers.append(handler)
        try:
            kernel.sthread_join(handler, timeout=20.0)
        except (SthreadFaulted, CompartmentDown) as exc:
            # contained: this session's connection drops; the mailbox
            # and password blobs are untouched and the listener lives
            self.errors.append(f"handler faulted: {exc}")
        finally:
            kernel.tag_delete(uid_tag)

    # -- runs inside the client handler sthread ------------------------------

    def _handler_body(self, arg):
        kernel = self.kernel
        gates = {}
        for gate_id in kernel.current().gates:
            gates[kernel.gate_record(gate_id).entry.__name__] = gate_id
        adapter = GateAdapter(kernel, gates["login_gate"],
                              gates["retrieve_gate"])
        loop = Pop3CommandLoop(kernel, arg["fd"], adapter, {
            "variant": self.variant,
            "kernel": kernel,
            "fd": arg["fd"],
            "gates": gates,
            "uid_addr": arg["uid_addr"],
            "pw_addr": self.pw_buf.addr,
            "mail_addr": self.mail_buf.addr,
        })
        return loop.run()


def analysis_compartments(server, conn_fd=3):
    """CompartmentSpecs for ``python -m repro lint`` (repro.analysis)."""
    from repro.analysis.lint import (CompartmentSpec,
                                     gate_compartment_specs)
    sc, uid_tag, uid_buf = server._connection_contexts(conn_fd)
    app = f"pop3.{server.variant}"
    specs = [CompartmentSpec(
        "handler", app, server.kernel, sc,
        [(PartitionedPop3._handler_body,
          {"self": server,
           "arg": {"fd": conn_fd, "uid_addr": uid_buf.addr}})],
        sthread_prefix="pop3-handler", exploit_facing=True,
        sensitive_tags=("pop3-passwords", "pop3-mail"))]
    specs += gate_compartment_specs(sc, server.kernel, app=app)
    return specs
