"""The POP3 server of paper section 2 — the motivating example."""

from repro.apps.pop3 import store
from repro.apps.pop3.client import Pop3Client
from repro.apps.pop3.server import (MonolithicPop3, PartitionedPop3,
                                    Pop3Base)

__all__ = ["MonolithicPop3", "PartitionedPop3", "Pop3Base", "Pop3Client",
           "store"]
