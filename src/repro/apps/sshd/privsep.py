"""Provos-style privilege-separated sshd (the paper's comparison point).

Architecture (Provos et al., "Preventing privilege escalation"):

* the **monitor** is the privileged daemon process itself: it keeps the
  host key, reads ``/etc/shadow``, and services a fixed set of requests
  (``getpwnam``, ``auth_password``, ``skey_challenge`` ...) over an IPC
  boundary;
* per connection, an unprivileged **slave** is created with ``fork`` —
  inheriting a copy of the monitor's entire memory — then demotes itself
  and handles all network-facing work, calling the monitor for anything
  privileged.

Two weaknesses the paper dissects are reproduced faithfully:

1. **Brittle scrubbing.**  Because ``fork`` grants memory by default,
   the slave must *scrub* sensitive data after forking.  This slave
   dutifully scrubs the host key — but nobody told it about the PAM
   library's scratch storage (paper ref [8]), so password residue from
   *earlier* connections authenticated in the monitor is still readable
   by an exploited slave.
2. **Interface leaks.**  The monitor's ``getpwnam`` returns NULL for
   unknown users, so an exploited slave can probe the user database at
   will (still present in portable OpenSSH 4.7, per the paper); the
   S/Key path confirms usernames the same way (ref [14]).
"""

from __future__ import annotations

import threading

from repro.apps.sshd.common import SSHD_UID, SshdBase
from repro.apps.sshd.monolithic import DirectAuthBackend
from repro.core.errors import SthreadFaulted
from repro.attacks.exploit import maybe_trigger_exploit
from repro.crypto.dsa import DsaPrivateKey
from repro.sshlib import userauth
from repro.sshlib.server import (AuthOutcome, KernelSessionOps,
                                 ServerSession)
from repro.tls.codec import pack_fields, unpack_fields
from repro.tls.records import KernelSocketTransport


class MonitorIPC:
    """The slave's stub for talking to the monitor.

    Each call executes in the **monitor's compartment** (the simulation's
    stand-in for marshalling the request over the privsep pipe and
    having the monitor process service it).  The request *interface* —
    what questions a slave may ask and what the answers reveal — is
    copied from privilege-separated OpenSSH, leaks included.
    """

    def __init__(self, kernel, monitor_sthread, backend, key_loc, env):
        self.kernel = kernel
        self.monitor = monitor_sthread
        self.backend = backend
        self.key_loc = key_loc
        self.env = env
        self._lock = threading.Lock()
        self.requests = []          # audit trail, inspected by tests

    def _call(self, name, fn, *args):
        with self._lock:
            self.requests.append(name)
            with self.kernel._as_current(self.monitor):
                return fn(*args)

    def getpwnam(self, user):
        """Returns the passwd entry **or None** — the username leak."""
        return self._call("getpwnam", self.backend.getpwnam, user)

    def auth_password(self, user, password):
        # PAM runs here, in the monitor: its unscrubbed scratch lands in
        # the monitor's heap and is inherited by every future slave
        return self._call("auth_password", self.backend.auth_password,
                          user, password)

    def skey_challenge(self, user):
        return self._call("skey_challenge", self.backend.skey_challenge,
                          user)

    def skey_verify(self, user, response):
        return self._call("skey_verify", self.backend.skey_verify, user,
                          response)

    def authorized_keys(self, user):
        return self._call("authorized_keys", self.backend.authorized_keys,
                          user)

    def sign_with_host_key(self, data):
        def sign():
            key_bytes = self.kernel.mem_read(*self.key_loc)
            return DsaPrivateKey.from_bytes(key_bytes).sign(
                data, self.env.rng.fork(f"psig{data[:4].hex()}"))
        return self._call("sign", sign)

    def promote_slave(self, slave, passwd):
        """Monitor-side setuid of the slave after successful auth."""
        def promote():
            self.kernel.promote(slave, uid=passwd.uid, root="/")
        return self._call("promote", promote)


class SlaveAuthBackend:
    """Auth decisions made by asking the monitor (two-step flow)."""

    def __init__(self, ipc, kernel):
        self.ipc = ipc
        self.kernel = kernel

    def handle(self, method, user, payload, session_hash):
        ipc = self.ipc
        if method == userauth.AUTH_PASSWORD:
            # step 1: getpwnam — the leak
            pw = ipc.getpwnam(user)
            if pw is None:
                return AuthOutcome.fail(b"unknown user")
            # step 2: password check
            if not ipc.auth_password(user, payload):
                return AuthOutcome.fail(b"wrong password")
            ipc.promote_slave(self.kernel.current(), pw)
            return AuthOutcome.ok(pw)
        if method == userauth.AUTH_PUBKEY:
            pw = ipc.getpwnam(user)
            if pw is None:
                return AuthOutcome.fail(b"unknown user")
            pub_bytes, signature = unpack_fields(payload, 2)
            if not userauth.check_pubkey(ipc.authorized_keys(user),
                                         session_hash, user, pub_bytes,
                                         signature):
                return AuthOutcome.fail(b"pubkey rejected")
            ipc.promote_slave(self.kernel.current(), pw)
            return AuthOutcome.ok(pw)
        if method == userauth.AUTH_SKEY:
            if not payload:
                challenge = ipc.skey_challenge(user)
                if challenge is None:
                    return AuthOutcome.fail(b"unknown user")  # ref [14]
                count, seed = challenge
                return AuthOutcome.challenge(
                    pack_fields(str(count).encode(), seed))
            if not ipc.skey_verify(user, payload):
                return AuthOutcome.fail(b"bad s/key response")
            pw = ipc.getpwnam(user)
            ipc.promote_slave(self.kernel.current(), pw)
            return AuthOutcome.ok(pw)
        return AuthOutcome.fail(b"unsupported method")


class PrivsepSshd(SshdBase):
    """Monitor + forked slaves, faithful to the paper's critique."""

    variant = "privsep"

    def __init__(self, network, addr, **kwargs):
        super().__init__(network, addr, **kwargs)
        key_bytes = self.env.host_key.to_bytes()
        self.key_buf = self.kernel.alloc_buf(len(key_bytes),
                                             init=key_bytes)
        backend = DirectAuthBackend(self.kernel, self.env,
                                    promote_via_setuid=False)
        self.ipc = MonitorIPC(self.kernel, self.main, backend,
                              (self.key_buf.addr, self.key_buf.size),
                              self.env)
        self.slaves = []

    def handle_connection(self, conn_fd):
        slave = self.kernel.fork(
            self._slave_body, {"fd": conn_fd},
            name=f"slave{self.connections_served}", spawn="thread")
        self.slaves.append(slave)
        try:
            self.kernel.sthread_join(slave, timeout=30.0)
        except SthreadFaulted as exc:
            self.errors.append(f"slave faulted: {exc}")

    # -- runs in the forked slave -------------------------------------------------

    def _slave_body(self, arg):
        kernel = self.kernel
        # scrub the inherited host key (conventional privsep hygiene) —
        # the write hits the slave's COW copy only
        kernel.mem_write(self.key_buf.addr, bytes(self.key_buf.size))
        # ... but nobody scrubs the PAM scratch the monitor's earlier
        # authentications left in the heap (paper ref [8])
        kernel.setuid(SSHD_UID)

        session = ServerSession(
            KernelSocketTransport(kernel, arg["fd"]),
            self.rng.fork(f"conn{self.connections_served}"),
            host_pub_bytes=self.host_pub_bytes,
            signer=self.ipc.sign_with_host_key,
            auth_backend=SlaveAuthBackend(self.ipc, kernel),
            session_ops=KernelSessionOps(kernel),
            exploit_hook=self._exploit_hook(arg["fd"]))
        result = session.run()
        if session.authenticated is not None:
            self.logins += 1
        return result

    def _exploit_hook(self, conn_fd):
        def hook(payload, extra):
            maybe_trigger_exploit(self.kernel, payload, context={
                "variant": self.variant,
                "kernel": self.kernel,
                "fd": conn_fd,
                "monitor": self.ipc,
                "host_pub_bytes": self.host_pub_bytes,
                **extra,
            })
        return hook
