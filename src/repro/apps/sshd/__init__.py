"""The OpenSSH-like login server in its three architectures.

* :class:`~repro.apps.sshd.monolithic.MonolithicSshd` — fork-per-
  connection, fully privileged (pre-privsep OpenSSH 3.1p1);
* :class:`~repro.apps.sshd.privsep.PrivsepSshd` — Provos-style
  monitor/slave privilege separation, leaks included;
* :class:`~repro.apps.sshd.wedge.WedgeSshd` — the paper's Figure 6
  partitioning with four callgates.
"""

from repro.apps.sshd.common import SSHD_UID, SshdBase, SshdEnvironment
from repro.apps.sshd.monolithic import DirectAuthBackend, MonolithicSshd
from repro.apps.sshd.privsep import MonitorIPC, PrivsepSshd
from repro.apps.sshd.wedge import GateAuthBackend, WedgeSshd

__all__ = ["DirectAuthBackend", "GateAuthBackend", "MonitorIPC",
           "MonolithicSshd", "PrivsepSshd", "SSHD_UID", "SshdBase",
           "SshdEnvironment", "WedgeSshd"]
