"""The Wedge-partitioned sshd (paper Figure 6).

The four application-dictated goals of paper section 5.2, and how this
module meets them:

1. *Minimize code with access to the private key* — the DSA host key
   lives in a tag only the ``dsa_sign`` callgate maps; the gate signs a
   hash it computes itself, so the worker cannot obtain signatures over
   chosen raw data.
2. *Pre-auth: minimal privilege* — each connection's worker sthread runs
   as the unprivileged ``sshd`` uid with its filesystem root set to the
   empty directory, holding only the connection descriptor, read access
   to the configuration tag (public key, version strings, allowed
   ciphers), and the four callgate grants.  No memory inheritance means
   **no scrubbing** is needed — the contrast with
   :mod:`repro.apps.sshd.privsep`.
3. *Post-auth: escalate* — a successful authentication callgate (which
   inherited the creator's root uid and "/" filesystem root) *promotes
   its caller* to the user's uid and restores its filesystem root — the
   Privtrans idiom the paper credits.
4. *No auth bypass* — the worker's uid can change **only** through those
   gates; skipping authentication leaves it jailed at uid 22 in an empty
   chroot.

The two privsep leaks are fixed at the gate interfaces: the password
gate returns a **dummy passwd** for unknown users, and the S/Key gate
issues a deterministic dummy challenge, so an exploited worker cannot
probe the user database.  PAM runs *inside* the password gate: its
unscrubbed scratch dies with the gate's private heap.
"""

from __future__ import annotations

import threading

from repro.apps.sshd import pam
from repro.apps.sshd.common import EMPTY_DIR, SSHD_UID, SshdBase
from repro.attacks.exploit import maybe_trigger_exploit
from repro.core.errors import (CallgateError, CompartmentDown,
                               ProtocolError, SthreadFaulted, WedgeError)
from repro.core.memory import PROT_READ
from repro.core.policy import (FD_RW, SecurityContext, sc_cgate_add,
                               sc_fd_add, sc_mem_add)
from repro.crypto.dsa import DsaPrivateKey
from repro.sshlib import userauth
from repro.sshlib.server import (AuthOutcome, KernelSessionOps,
                                 ServerSession)
from repro.tls.codec import pack_fields, unpack_fields
from repro.tls.records import KernelSocketTransport


# ---------------------------------------------------------------------------
# callgate entry points
# ---------------------------------------------------------------------------

def _read_file(kernel, path):
    fd = kernel.open(path, "r")
    try:
        out = bytearray()
        while True:
            chunk = kernel.read(fd, 65536)
            if not chunk:
                return bytes(out)
            out += chunk
    finally:
        kernel.close(fd)


def dsa_sign_gate(trusted, arg):
    """Sign the *hash* of the caller's data with the host key.

    280 lines of C in the paper; the only code with private-key access.
    Because the gate hashes internally (DSA signs a digest), the worker
    cannot turn it into a raw signing oracle.
    """
    kernel = trusted["kernel"]
    data = bytes(arg["data"])
    key_bytes = kernel.mem_read(trusted["key_addr"], trusted["key_len"])
    key = DsaPrivateKey.from_bytes(key_bytes)
    return {"signature": key.sign(data,
                                  trusted["rng"].fork(data[:8].hex()))}


def password_gate(trusted, arg):
    """Password authentication, shadow file and PAM included.

    The gate inherits its creator's uid 0 and "/" root, so it reads
    ``/etc/shadow`` directly from disk even though its *caller* is
    jailed (paper section 5.2).  Unknown users get a deterministic dummy
    passwd — an exploited worker cannot probe for valid usernames.
    On success it promotes the **caller**.
    """
    kernel = trusted["kernel"]
    config = kernel.mem_read(trusted["config_addr"],
                             trusted["config_len"])
    if b"password_authentication yes" not in config:
        return {"ok": False, "passwd": None}
    user = str(arg["user"])
    entries = userauth.parse_shadow(_read_file(kernel, "/etc/shadow"))

    if arg.get("op") == "getpwnam":
        pw = userauth.lookup_passwd(entries, user)
        if pw is None:
            pw = userauth.dummy_passwd(user)   # never NULL: no probe
        return {"passwd": (pw.user, pw.uid, pw.home)}

    # PAM scratch lands in this gate's private heap and dies with it
    ok = pam.pam_check(kernel, entries, user, bytes(arg["password"]))
    if not ok:
        return {"ok": False, "passwd": None}
    pw = userauth.lookup_passwd(entries, user)
    kernel.promote(kernel.caller(), uid=pw.uid, root="/")
    return {"ok": True, "passwd": (pw.user, pw.uid, pw.home)}


def dsa_auth_gate(trusted, arg):
    """DSA public-key authentication against ``authorized_keys``."""
    kernel = trusted["kernel"]
    user = str(arg["user"])
    entries = userauth.parse_shadow(_read_file(kernel, "/etc/shadow"))
    pw = userauth.lookup_passwd(entries, user)
    if pw is None:
        return {"ok": False}
    try:
        keys = userauth.parse_authorized_keys(
            _read_file(kernel, f"/home/{user}/.ssh/authorized_keys"))
    except WedgeError:
        return {"ok": False}
    if not userauth.check_pubkey(keys, bytes(arg["session_hash"]), user,
                                 bytes(arg["pub"]), bytes(arg["sig"])):
        return {"ok": False}
    kernel.promote(kernel.caller(), uid=pw.uid, root="/")
    return {"ok": True, "passwd": (pw.user, pw.uid, pw.home)}


def skey_gate(trusted, arg):
    """S/Key challenge-response with the reference-[14] fix.

    Unknown users receive a deterministic dummy challenge, so challenge
    presence confirms nothing.
    """
    kernel = trusted["kernel"]
    user = str(arg["user"])
    db = userauth.parse_skey_db(_read_file(kernel, "/etc/skeykeys"))

    if arg.get("op") == "challenge":
        entry = db.get(user)
        if entry is None:
            count, seed = userauth.dummy_skey_challenge(user)
        else:
            count, seed = entry.challenge()
        return {"count": count, "seed": seed}

    entry = db.get(user)
    if entry is None or not entry.verify(bytes(arg["response"])):
        return {"ok": False}
    fd = kernel.open("/etc/skeykeys", "w")
    try:
        kernel.write(fd, userauth.serialize_skey_db(db))
    finally:
        kernel.close(fd)
    entries = userauth.parse_shadow(_read_file(kernel, "/etc/shadow"))
    pw = userauth.lookup_passwd(entries, user)
    kernel.promote(kernel.caller(), uid=pw.uid, root="/")
    return {"ok": True, "passwd": (pw.user, pw.uid, pw.home)}


# ---------------------------------------------------------------------------
# worker-side auth backend (talks to the gates)
# ---------------------------------------------------------------------------

class GateAuthBackend:
    """The worker's view of authentication: four callgate invocations."""

    def __init__(self, kernel, gates, session_hash_provider=None):
        self.kernel = kernel
        self.gates = gates

    def handle(self, method, user, payload, session_hash):
        try:
            return self._dispatch(method, user, payload, session_hash)
        except (CallgateError, CompartmentDown):
            # a crashed (or degraded) auth gate denies — it never
            # grants — and the daemon survives the gate's death
            return AuthOutcome.fail(b"authentication service unavailable")

    def _dispatch(self, method, user, payload, session_hash):
        kernel = self.kernel
        if method == userauth.AUTH_PASSWORD:
            # two-step flow kept for ease of coding (paper section 5.2);
            # step 1 can no longer leak — it always returns a passwd
            kernel.cgate(self.gates["password_gate"], None,
                         {"op": "getpwnam", "user": user})
            reply = kernel.cgate(self.gates["password_gate"], None,
                                 {"op": "auth", "user": user,
                                  "password": payload})
            if not reply["ok"]:
                return AuthOutcome.fail(b"authentication failed")
            return AuthOutcome.ok(_passwd(reply))
        if method == userauth.AUTH_PUBKEY:
            pub, sig = unpack_fields(payload, 2)
            reply = kernel.cgate(self.gates["dsa_auth_gate"], None,
                                 {"user": user, "pub": pub, "sig": sig,
                                  "session_hash": session_hash})
            if not reply["ok"]:
                return AuthOutcome.fail(b"authentication failed")
            return AuthOutcome.ok(_passwd(reply))
        if method == userauth.AUTH_SKEY:
            if not payload:
                reply = kernel.cgate(self.gates["skey_gate"], None,
                                     {"op": "challenge", "user": user})
                return AuthOutcome.challenge(pack_fields(
                    str(reply["count"]).encode(), reply["seed"]))
            reply = kernel.cgate(self.gates["skey_gate"], None,
                                 {"op": "verify", "user": user,
                                  "response": payload})
            if not reply["ok"]:
                return AuthOutcome.fail(b"authentication failed")
            return AuthOutcome.ok(_passwd(reply))
        return AuthOutcome.fail(b"unsupported method")


def _passwd(reply):
    user, uid, home = reply["passwd"]
    return userauth.Passwd(user, uid, home)


# ---------------------------------------------------------------------------
# the server
# ---------------------------------------------------------------------------

class WedgeSshd(SshdBase):
    """Figure 6: per-connection workers, four gates, no inheritance."""

    variant = "wedge"

    def __init__(self, network, addr, **kwargs):
        super().__init__(network, addr, **kwargs)
        kernel = self.kernel
        # host private key: tagged, mapped only by dsa_sign
        key_bytes = self.env.host_key.to_bytes()
        self.key_tag = kernel.tag_new(name="host-private-key")
        self.key_buf = kernel.alloc_buf(len(key_bytes), tag=self.key_tag,
                                        init=key_bytes)
        # configuration + public key: tagged, readable by every worker
        self.config_tag = kernel.tag_new(name="sshd-config")
        config_blob = self.env.config
        self.config_buf = kernel.alloc_buf(len(config_blob),
                                           tag=self.config_tag,
                                           init=config_blob)
        pub = self.host_pub_bytes
        self.pub_buf = kernel.alloc_buf(len(pub), tag=self.config_tag,
                                        init=pub)
        self._gate_trusted = {
            "kernel": kernel,
            "rng": self.rng.fork("gate-rng"),
            "key_addr": self.key_buf.addr,
            "key_len": self.key_buf.size,
            "config_addr": self.config_buf.addr,
            "config_len": self.config_buf.size,
            "lock": threading.Lock(),
        }
        self.workers = []

    def _worker_context(self, conn_fd):
        """Figure 6: the worker's complete privilege set."""
        sc = SecurityContext(uid=SSHD_UID, root=EMPTY_DIR)
        sc_fd_add(sc, conn_fd, FD_RW)
        sc_mem_add(sc, self.config_tag, PROT_READ)

        sign_sc = SecurityContext()
        sc_mem_add(sign_sc, self.key_tag, PROT_READ)
        sc_cgate_add(sc, dsa_sign_gate, sign_sc, self._gate_trusted,
                     supervise=self.supervise)

        # only the password gate consults the tagged configuration (for
        # the password_authentication switch); dsa_auth and skey work
        # purely from files, so granting them the config tag was pure
        # excess — caught by `python -m repro lint` as UNUSED_GRANT
        pw_sc = SecurityContext()
        sc_mem_add(pw_sc, self.config_tag, PROT_READ)
        sc_cgate_add(sc, password_gate, pw_sc, self._gate_trusted,
                     supervise=self.supervise)
        for entry in (dsa_auth_gate, skey_gate):
            sc_cgate_add(sc, entry, SecurityContext(),
                         self._gate_trusted, supervise=self.supervise)
        return sc

    def handle_connection(self, conn_fd):
        sc = self._worker_context(conn_fd)
        worker = self.kernel.sthread_create(
            sc, self._worker_body, {"fd": conn_fd},
            name=f"ssh-worker{self.connections_served}", spawn="thread",
            supervise=self.supervise)
        self.workers.append(worker)
        try:
            self.kernel.sthread_join(worker, timeout=30.0)
        except (SthreadFaulted, CompartmentDown) as exc:
            # contained: the pre-auth worker dies, the daemon does not
            self.errors.append(f"worker faulted: {exc}")

    # -- runs inside the worker sthread ---------------------------------------

    def _worker_body(self, arg):
        kernel = self.kernel
        gates = {}
        for gate_id in kernel.current().gates:
            record = kernel.gate_record(gate_id)
            gates[record.entry.__name__] = gate_id

        def signer(session_hash):
            reply = kernel.cgate(gates["dsa_sign_gate"], None,
                                 {"data": session_hash})
            return reply["signature"]

        session = ServerSession(
            KernelSocketTransport(kernel, arg["fd"]),
            self.rng.fork(f"conn{self.connections_served}"),
            host_pub_bytes=kernel.mem_read(self.pub_buf.addr,
                                           self.pub_buf.size),
            signer=signer,
            auth_backend=GateAuthBackend(kernel, gates),
            session_ops=KernelSessionOps(kernel),
            exploit_hook=self._exploit_hook(arg["fd"], gates))
        result = session.run()
        if session.authenticated is not None:
            self.logins += 1
        return result

    def _exploit_hook(self, conn_fd, gates):
        def hook(payload, extra):
            maybe_trigger_exploit(self.kernel, payload, context={
                "variant": self.variant,
                "kernel": self.kernel,
                "fd": conn_fd,
                "gates": gates,
                "key_addr": self.key_buf.addr,
                "host_pub_bytes": self.host_pub_bytes,
                **extra,
            })
        return hook


def analysis_compartments(server, conn_fd=3):
    """CompartmentSpecs for ``python -m repro lint`` (repro.analysis)."""
    from repro.analysis.lint import (CompartmentSpec,
                                     gate_compartment_specs)
    sc = server._worker_context(conn_fd)
    app = f"sshd.{server.variant}"
    specs = [CompartmentSpec(
        "worker", app, server.kernel, sc,
        [(WedgeSshd._worker_body,
          {"self": server, "arg": {"fd": conn_fd}})],
        sthread_prefix="ssh-worker", exploit_facing=True,
        sensitive_tags=("host-private-key",))]
    specs += gate_compartment_specs(sc, server.kernel, app=app)
    return specs
