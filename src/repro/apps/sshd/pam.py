"""A PAM-like authentication library with the paper's scrubbing bug.

Paper section 5.2 recounts a real OpenSSH vulnerability (reference [8]):
the PAM library "kept sensitive information in scratch storage, and did
not scrub that storage before returning".  A process that later forks
inherits that scratch; an exploited child can disclose it.

:func:`pam_check` reproduces the bug faithfully: it copies the username
and password into heap scratch (as real PAM conversation functions do),
performs the check, and returns *without scrubbing or freeing* the
scratch.  Where that scratch lives — the monolithic daemon's heap, the
privsep monitor's heap (inherited by every forked slave), or a Wedge
callgate's private heap (unreachable by the worker) — is decided by the
caller, and is the whole point of the comparison.
"""

from __future__ import annotations

from repro.sshlib.userauth import check_password

#: Marker prefix so tests (and attackers) can find the residue.
SCRATCH_MARKER = b"PAM-SCRATCH:"


def pam_check(kernel, shadow_entries, user, password):
    """Authenticate *user*; leaves credential residue in the heap.

    The scratch allocation uses ``kernel.malloc`` — it lands in the
    *current compartment's* private heap.  Deliberately neither freed
    nor scrubbed (the simulated library bug).
    """
    record = SCRATCH_MARKER + user.encode() + b":" + bytes(password)
    scratch = kernel.malloc(len(record) + 16)
    kernel.mem_write(scratch, record)
    # ... real PAM would talk to its modules here ...
    result = check_password(shadow_entries, user, password)
    # BUG (paper ref [8]): returning without scrubbing `scratch`
    return result
