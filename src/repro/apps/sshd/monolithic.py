"""Vanilla sshd: fork-per-connection, everything privileged.

The pre-privilege-separation OpenSSH baseline (the paper partitions
version 3.1p1, "the last version prior to the introduction of privilege
separation").  Each connection is served by a ``fork`` child that
inherits the whole daemon image — including the DSA host private key in
plain heap memory and any PAM scratch residue — and runs as root until
authentication succeeds.

The security tests exploit the child pre-auth and read the host key
straight out of inherited memory.
"""

from __future__ import annotations

from repro.apps.sshd import pam
from repro.apps.sshd.common import SshdBase
from repro.attacks.exploit import maybe_trigger_exploit
from repro.core.errors import SthreadFaulted, WedgeError
from repro.sshlib import userauth
from repro.sshlib.server import (AuthOutcome, KernelSessionOps,
                                 ServerSession)
from repro.tls.codec import pack_fields, unpack_fields
from repro.tls.records import KernelSocketTransport


class DirectAuthBackend:
    """Credential checks done in-process, with full privilege.

    Carries the two information leaks the paper calls out so the Wedge
    variant has something to fix:

    * unknown usernames fail *differently* from wrong passwords
      (the getpwnam-NULL leak of privilege-separated OpenSSH);
    * an S/Key challenge is returned **only** for valid usernames
      (the leak of paper reference [14]).
    """

    def __init__(self, kernel, env, *, promote_via_setuid=True):
        self.kernel = kernel
        self.env = env
        self.promote_via_setuid = promote_via_setuid
        self._pending_skey = {}

    # -- privileged file reads ------------------------------------------------

    def _read(self, path):
        fd = self.kernel.open(path, "r")
        try:
            out = bytearray()
            while True:
                chunk = self.kernel.read(fd, 65536)
                if not chunk:
                    return bytes(out)
                out += chunk
        finally:
            self.kernel.close(fd)

    def _shadow(self):
        return userauth.parse_shadow(self._read("/etc/shadow"))

    # -- the IPC-visible operations (monitor interface under privsep) -----------

    def getpwnam(self, user):
        """Returns the passwd entry or ``None`` — the information leak."""
        return userauth.lookup_passwd(self._shadow(), user)

    def auth_password(self, user, password):
        return pam.pam_check(self.kernel, self._shadow(), user, password)

    def skey_challenge(self, user):
        """A challenge only for known users — the reference-[14] leak."""
        db = userauth.parse_skey_db(self._read("/etc/skeykeys"))
        entry = db.get(user)
        if entry is None:
            return None
        count, seed = entry.challenge()
        self._pending_skey[user] = (db, entry)
        return count, seed

    def skey_verify(self, user, response):
        pending = self._pending_skey.pop(user, None)
        if pending is None:
            return False
        db, entry = pending
        if not entry.verify(bytes(response)):
            return False
        fd = self.kernel.open("/etc/skeykeys", "w")
        try:
            self.kernel.write(fd, userauth.serialize_skey_db(db))
        finally:
            self.kernel.close(fd)
        return True

    def authorized_keys(self, user):
        try:
            return userauth.parse_authorized_keys(
                self._read(f"/home/{user}/.ssh/authorized_keys"))
        except WedgeError:
            return []

    def sign_with_host_key(self, data):
        key_bytes = self.kernel.mem_read(*self._host_key_loc)
        from repro.crypto.dsa import DsaPrivateKey
        return DsaPrivateKey.from_bytes(key_bytes).sign(
            data, self.env.rng.fork(f"sig{data[:4].hex()}"))

    # -- the ServerSession strategy interface ------------------------------------

    def handle(self, method, user, payload, session_hash):
        if method == userauth.AUTH_PASSWORD:
            pw = self.getpwnam(user)
            if pw is None:
                return AuthOutcome.fail(b"unknown user")  # the leak
            if not self.auth_password(user, payload):
                return AuthOutcome.fail(b"wrong password")
            return self._success(pw)
        if method == userauth.AUTH_PUBKEY:
            pw = self.getpwnam(user)
            if pw is None:
                return AuthOutcome.fail(b"unknown user")
            pub_bytes, signature = unpack_fields(payload, 2)
            if not userauth.check_pubkey(self.authorized_keys(user),
                                         session_hash, user, pub_bytes,
                                         signature):
                return AuthOutcome.fail(b"pubkey rejected")
            return self._success(pw)
        if method == userauth.AUTH_SKEY:
            if not payload:
                challenge = self.skey_challenge(user)
                if challenge is None:
                    return AuthOutcome.fail(b"unknown user")  # ref [14]
                count, seed = challenge
                return AuthOutcome.challenge(
                    pack_fields(str(count).encode(), seed))
            if not self.skey_verify(user, payload):
                return AuthOutcome.fail(b"bad s/key response")
            return self._success(self.getpwnam(user))
        return AuthOutcome.fail(b"unsupported method")

    def _success(self, passwd):
        if self.promote_via_setuid:
            # the fork child is root; it drops to the user itself
            self.kernel.setuid(passwd.uid)
        return AuthOutcome.ok(passwd)


class MonolithicSshd(SshdBase):
    """Fork-per-connection vanilla sshd."""

    variant = "monolithic"

    def __init__(self, network, addr, **kwargs):
        super().__init__(network, addr, **kwargs)
        # the host private key sits in ordinary daemon heap memory,
        # cloned into every fork child
        key_bytes = self.env.host_key.to_bytes()
        self.key_buf = self.kernel.alloc_buf(len(key_bytes),
                                             init=key_bytes)

    def handle_connection(self, conn_fd):
        child = self.kernel.fork(self._child_body, {"fd": conn_fd},
                                 name=f"sshd-child{self.connections_served}",
                                 spawn="thread")
        try:
            self.kernel.sthread_join(child, timeout=30.0)
        except SthreadFaulted as exc:
            self.errors.append(f"child faulted: {exc}")

    # -- runs in the fork child ------------------------------------------------

    def _child_body(self, arg):
        backend = DirectAuthBackend(self.kernel, self.env)
        backend._host_key_loc = (self.key_buf.addr, self.key_buf.size)
        session = ServerSession(
            KernelSocketTransport(self.kernel, arg["fd"]),
            self.rng.fork(f"conn{self.connections_served}"),
            host_pub_bytes=self.host_pub_bytes,
            signer=backend.sign_with_host_key,
            auth_backend=backend,
            session_ops=KernelSessionOps(self.kernel),
            exploit_hook=self._exploit_hook(arg["fd"]))
        result = session.run()
        if session.authenticated is not None:
            self.logins += 1
        return result

    def _exploit_hook(self, conn_fd):
        def hook(payload, extra):
            maybe_trigger_exploit(self.kernel, payload, context={
                "variant": self.variant,
                "kernel": self.kernel,
                "fd": conn_fd,
                "host_pub_bytes": self.host_pub_bytes,
                **extra,
            })
        return hook
