"""Shared sshd plumbing: the simulated host environment and server base.

:class:`SshdEnvironment` builds everything a login server needs on the
simulated machine: user accounts with passwords, DSA user keys and S/Key
enrollments; ``/etc/shadow`` (root-only), ``authorized_keys`` files,
the S/Key database, per-user home directories with private files, the
empty chroot directory, and the server's DSA host key pair.
"""

from __future__ import annotations

import threading

from repro.core.errors import WedgeError
from repro.core.kernel import Kernel
from repro.net.serve import start_accept_loop
from repro.crypto import skey as skeymod
from repro.crypto.dsa import generate_keypair
from repro.crypto.rng import DetRNG
from repro.sshlib import userauth

#: The unprivileged uid pre-auth workers run as (like the sshd user).
SSHD_UID = 22
EMPTY_DIR = "/var/empty"

DEFAULT_USERS = {
    "alice": {"password": b"wonderland", "uid": 1000, "skey": True,
              "pubkey": True},
    "bob": {"password": b"builder", "uid": 1001, "skey": False,
            "pubkey": False},
}

DEFAULT_CONFIG = (b"protocol ssh-sim-1.0\n"
                  b"password_authentication yes\n"
                  b"pubkey_authentication yes\n"
                  b"skey_authentication yes\n"
                  b"permit_empty_passwords no\n")


class SshdEnvironment:
    """Key material plus the VFS population for one sshd instance."""

    def __init__(self, rng, users=None, config=DEFAULT_CONFIG):
        self.rng = rng
        self.users = {name: dict(spec)
                      for name, spec in (users or DEFAULT_USERS).items()}
        self.config = config
        self.host_key = generate_keypair(rng.fork("hostkey"))
        self.user_keys = {}
        self.skey_entries = {}
        for name, spec in self.users.items():
            if spec.get("pubkey"):
                self.user_keys[name] = generate_keypair(
                    rng.fork(f"userkey-{name}"))
            if spec.get("skey"):
                self.skey_entries[name] = skeymod.SkeyEntry.enroll(
                    spec["password"], f"seed-{name}".encode())

    def populate(self, vfs):
        """Write the environment into a kernel's VFS."""
        shadow_lines = []
        for name, spec in self.users.items():
            salt = f"salt-{name}".encode()
            home = f"/home/{name}"
            shadow_lines.append(userauth.shadow_line(
                name, salt, spec["password"], spec["uid"], home))
            vfs.mkdir(home)
            vfs.write_file(f"{home}/secret.txt",
                           f"{name}'s private notes\n".encode(),
                           owner=spec["uid"], mode=0o600)
            vfs.write_file(f"{home}/README",
                           b"welcome\n", owner=spec["uid"], mode=0o644)
            key = self.user_keys.get(name)
            if key is not None:
                vfs.write_file(
                    f"{home}/.ssh/authorized_keys",
                    userauth.authorized_keys_line(key.public()) + b"\n",
                    owner=spec["uid"], mode=0o600)
        vfs.write_file("/etc/shadow", b"\n".join(shadow_lines) + b"\n",
                       owner=0, mode=0o600)
        vfs.write_file("/etc/sshd_config", self.config, owner=0,
                       mode=0o644)
        vfs.write_file("/etc/skeykeys",
                       userauth.serialize_skey_db(self.skey_entries),
                       owner=0, mode=0o600)
        vfs.mkdir(EMPTY_DIR)

    def passwd_for(self, name):
        spec = self.users[name]
        return userauth.Passwd(name, spec["uid"], f"/home/{name}")


class SshdBase:
    """Accept-loop scaffolding shared by the three sshd variants."""

    variant = "base"

    def __init__(self, network, addr, *, seed="sshd", env=None,
                 tag_cache=True, supervise=None):
        self.network = network
        self.addr = addr
        self.rng = DetRNG(seed)
        #: optional RestartPolicy applied to per-connection compartments
        self.supervise = supervise
        self.env = env or SshdEnvironment(self.rng.fork("env"))
        self.kernel = Kernel(net=network, name=f"sshd-{self.variant}")
        self.main = self.kernel.start_main()
        self.env.populate(self.kernel.vfs)
        self.host_pub_bytes = self.env.host_key.public().to_bytes()
        self._listen_fd = None
        self._accept_runner = None
        self._stop = threading.Event()
        self.connections_served = 0
        self.logins = 0
        self.errors = []

    def start(self):
        if self._accept_runner is not None:
            raise WedgeError("server already started")
        self._listen_fd = self.kernel.listen(self.addr)
        self._accept_runner = start_accept_loop(
            self.kernel, self._listen_fd, self._on_conn,
            stop=self._stop, name=f"sshd-{self.variant}-accept")
        return self

    def stop(self):
        self._stop.set()
        try:
            self.kernel.close(self._listen_fd)
        except WedgeError:
            pass
        if self._accept_runner is not None:
            self._accept_runner.join(5.0)

    def _on_conn(self, conn_fd):
        self.connections_served += 1
        return lambda: self._handle_safely(conn_fd)

    def _handle_safely(self, conn_fd):
        try:
            self.handle_connection(conn_fd)
        except WedgeError as exc:
            self.errors.append(f"{type(exc).__name__}: {exc}")
        finally:
            try:
                self.kernel.close(conn_fd)
            except WedgeError:
                pass

    def handle_connection(self, conn_fd):
        raise NotImplementedError
