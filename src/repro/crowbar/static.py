"""Static policy analysis — the paper's §7 future-work item, built.

    "We intend to explore static analysis as an alternative to runtime
    analysis.  Static analysis will yield a superset of the required
    permissions for an sthread, as some code paths may never execute in
    practice. [...] Yet these permissions could well include privileges
    for sensitive data that could allow an exploit to leak that data."

This module implements exactly that trade-off so it can be measured.
:func:`static_policy` walks the AST of a compartment body (and, one
level deep, the functions it calls) and over-approximates the memory
grants the body *could* need on **any** path: every ``kernel.mem_read``
/ ``mem_write`` / ``smalloc`` / ``Buffer.read`` / ``Buffer.write`` whose
target resolves to a known tagged object contributes a grant,
regardless of branch conditions.

The companion :func:`compare_with_trace` quantifies the paper's
warning: grants the static analysis demands that a dynamic (Crowbar)
trace of an innocuous workload never exercised — each one a privilege
an exploit could abuse but correct execution never needed.

Resolution is name-based over a *bindings* map (``name -> Tag`` or
``name -> Buffer``); anything the analysis cannot resolve is reported
in ``unresolved`` rather than silently dropped, because an unsound
"static" tool would be worse than none.
"""

from __future__ import annotations

import ast
import inspect
import textwrap

from repro.core.errors import WedgeError
from repro.core.kernel import Buffer
from repro.core.tags import Tag


class StaticReport:
    """The result of one analysis run."""

    def __init__(self):
        #: tag id -> "r" or "rw" (the over-approximated grant set)
        self.grants = {}
        #: expressions the analysis could not resolve to a tag
        self.unresolved = []
        #: (callee-name) functions that were inlined one level deep
        self.visited = []

    def add(self, tag_id, mode):
        previous = self.grants.get(tag_id)
        if previous == "rw" or mode == "rw":
            self.grants[tag_id] = "rw"
        else:
            self.grants[tag_id] = mode

    def __repr__(self):
        return (f"<StaticReport grants={self.grants} "
                f"unresolved={len(self.unresolved)}>")


def _tag_of(obj):
    """Resolve a bound object to (tag_id or None)."""
    if isinstance(obj, Tag):
        return obj.id
    if isinstance(obj, Buffer):
        segment, _ = obj.kernel.space.find(obj.addr)
        return segment.tag_id
    return None


class _BodyVisitor(ast.NodeVisitor):
    """Collects memory operations from one function body."""

    #: method name -> access mode implied
    KERNEL_METHODS = {
        "mem_read": "r",
        "mem_write": "rw",
        "smalloc": "rw",
        "sfree": "rw",
        "alloc_buf": "rw",
    }
    #: method name -> (positional index, keyword name, optional?) of the
    #: argument that carries the tag/address.  ``alloc_buf`` without a
    #: ``tag`` allocates private (untagged) memory, so its target is
    #: optional; everywhere else a missing target is an analysis gap.
    TARGET_ARGS = {
        "mem_read": (0, "addr", False),
        "mem_write": (0, "addr", False),
        "smalloc": (1, "tag", False),
        "sfree": (0, "addr", False),
        "alloc_buf": (1, "tag", True),
    }
    BUFFER_METHODS = {"read": "r", "write": "rw"}

    def __init__(self, analysis, bindings, depth):
        self.analysis = analysis
        self.bindings = bindings
        self.depth = depth

    # -- expression resolution ------------------------------------------------

    def _resolve(self, node):
        """Resolve an AST expression to a bound Python object, if we can.

        Handles ``name``, ``name.attr`` (e.g. ``buf.addr``), and
        ``obj.addr + <anything>`` (offset arithmetic keeps the base
        object's tag).
        """
        if isinstance(node, ast.Name):
            return self.bindings.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            if base is not None and node.attr == "addr":
                return base
            return None
        if isinstance(node, ast.BinOp):
            # offset arithmetic: the left operand names the base object
            return self._resolve(node.left) or self._resolve(node.right)
        return None

    def _record(self, target_node, mode, context):
        obj = self._resolve(target_node)
        if obj is None:
            self.analysis.report.unresolved.append(
                (context, ast.unparse(target_node)))
            return
        tag_id = _tag_of(obj)
        if tag_id is None:
            self.analysis.report.unresolved.append(
                (context, f"untagged object via "
                          f"{ast.unparse(target_node)!r}"))
            return
        self.analysis.report.add(tag_id, mode)

    # -- the interesting nodes ----------------------------------------------------

    def _call_target(self, node, index, name):
        """The AST node bound to a positional-or-keyword parameter."""
        positional = node.args[:index + 1]
        if len(positional) > index and not any(
                isinstance(arg, ast.Starred) for arg in positional):
            return node.args[index]
        for keyword in node.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    def visit_Call(self, node):
        self.generic_visit(node)
        func = node.func
        if not isinstance(func, ast.Attribute):
            # plain call: descend into same-module callees one level
            if isinstance(func, ast.Name) and self.depth > 0:
                self.analysis.descend(func.id, self.bindings,
                                      self.depth - 1)
            return
        method = func.attr
        if method in self.KERNEL_METHODS:
            index, name, optional = self.TARGET_ARGS[method]
            target = self._call_target(node, index, name)
            if target is not None:
                self._record(target, self.KERNEL_METHODS[method],
                             method)
            elif not optional:
                self.analysis.report.unresolved.append(
                    (method, f"no {name!r} argument in "
                             f"{ast.unparse(node)}"))
            return
        if method in self.BUFFER_METHODS:
            base = self._resolve(func.value)
            if isinstance(base, Buffer):
                self._record(func.value, self.BUFFER_METHODS[method],
                             f"Buffer.{method}")


class StaticAnalysis:
    """Drives the visitor over a root function and its callees."""

    def __init__(self, bindings):
        self.bindings = dict(bindings)
        self.report = StaticReport()
        self._functions = {}

    def register(self, fn):
        """Make *fn* analysable as a callee (same-module descent)."""
        self._functions[fn.__name__] = fn
        return fn

    def _source_tree(self, fn):
        try:
            source = textwrap.dedent(inspect.getsource(fn))
        except (OSError, TypeError) as exc:
            raise WedgeError(
                f"cannot obtain source for {fn!r}") from exc
        return ast.parse(source)

    def analyse(self, fn, *, depth=2):
        """Analyse *fn*; returns the (cumulative) report."""
        bindings = dict(self.bindings)
        # closures contribute resolvable names too
        if fn.__closure__:
            for name, cell in zip(fn.__code__.co_freevars,
                                  fn.__closure__):
                try:
                    bindings.setdefault(name, cell.cell_contents)
                except ValueError:
                    pass
        for name, value in (fn.__globals__ or {}).items():
            if isinstance(value, (Tag, Buffer)):
                bindings.setdefault(name, value)
        tree = self._source_tree(fn)
        self.report.visited.append(fn.__name__)
        _BodyVisitor(self, bindings, depth).visit(tree)
        return self.report

    def descend(self, name, bindings, depth):
        fn = self._functions.get(name)
        if fn is None or fn.__name__ in self.report.visited:
            return
        self.report.visited.append(fn.__name__)
        tree = self._source_tree(fn)
        _BodyVisitor(self, bindings, depth).visit(tree)


def static_policy(fn, bindings, *, callees=(), depth=2):
    """One-shot helper: the over-approximated grant set for *fn*.

    *bindings* maps names used in the source to Tag/Buffer objects;
    *callees* lists same-module functions the analysis may descend
    into.  Returns a :class:`StaticReport`.
    """
    analysis = StaticAnalysis(bindings)
    for callee in callees:
        analysis.register(callee)
    return analysis.analyse(fn, depth=depth)


_MODE_RANK = {"r": 1, "rw": 2}


def compare_with_trace(report, trace, procedure):
    """The §7 trade-off, quantified — comparing *modes*, not just tags.

    Returns ``(excess, missing)``: *excess* are grants static analysis
    demands but the dynamic trace of *procedure* never exercised —
    either whole tags the trace never touched (value ``"r"``/``"rw"``)
    or mode over-grants where static wants ``rw`` but the trace only
    read (value ``"rw>r"``).  *missing* is the mirror image: tags (or
    write modes) the trace used that the static pass failed to find —
    its unsoundness debt, also reported in ``report.unresolved``.
    """
    from repro.crowbar.analyze import suggest_policy
    dynamic, _ = suggest_policy(trace, procedure)
    excess = {}
    for tag_id, mode in report.grants.items():
        used = dynamic.get(tag_id)
        if used is None:
            excess[tag_id] = mode
        elif _MODE_RANK[mode] > _MODE_RANK[used]:
            excess[tag_id] = f"{mode}>{used}"
    missing = {}
    for tag_id, used in dynamic.items():
        granted = report.grants.get(tag_id)
        if granted is None:
            missing[tag_id] = used
        elif _MODE_RANK[used] > _MODE_RANK[granted]:
            missing[tag_id] = f"{used}>{granted}"
    return excess, missing
