"""cb-analyze: the paper's three queries over cb-log traces (§3.4).

1. :func:`memory_for_procedure` — "given a procedure, what memory items
   do it *and all its descendants in the execution call graph* access,
   and with what modes?"  This is the query a programmer runs before
   putting a procedure in a least-privilege sthread: the answer is the
   permission list for its security context.

2. :func:`procedures_using` — "given a list of data items, which
   procedures use any of them?"  Run this before wrapping sensitive
   data in a callgate: the answer is what code must move inside.

3. :func:`writes_of_procedure` — "given a procedure known to generate
   sensitive data, where do it and its descendants write?"  Feeds item
   lists into query 2.

Descendant semantics come straight from the backtraces: an access was
made by procedure P *or its descendants* iff P appears anywhere in the
access's backtrace.  :func:`aggregate` merges traces from multiple
innocuous workloads (paper section 3.4's coverage advice), and
:func:`suggest_policy` turns query 1 into concrete ``sc_mem_add`` lines.
"""

from __future__ import annotations

from collections import defaultdict

from repro.crowbar.records import Trace


def _by_descendants(trace, procedure):
    for record in trace.accesses:
        if procedure in record.functions():
            yield record


def memory_for_procedure(trace, procedure):
    """Query 1: item -> {"modes": set, "count": n, "sthreads": set}."""
    summary = {}
    for record in _by_descendants(trace, procedure):
        entry = summary.get(record.item)
        if entry is None:
            entry = summary[record.item] = {
                "modes": set(), "count": 0, "sthreads": set()}
        entry["modes"].add(record.op)
        entry["count"] += 1
        entry["sthreads"].add(record.sthread)
    return summary


def procedures_using(trace, items, *, innermost_only=False):
    """Query 2: which procedures touch any of *items*.

    By default every procedure on the backtrace counts (they all "use"
    the data through their callees); ``innermost_only`` restricts to the
    function that issued the access.
    """
    wanted = {item.key() if hasattr(item, "key") else item
              for item in items}
    procedures = set()
    for record in trace.accesses:
        if record.item.key() not in wanted:
            continue
        if innermost_only:
            inner = record.innermost()
            if inner is not None:
                procedures.add(inner.func)
        else:
            procedures.update(record.functions())
    return procedures


def writes_of_procedure(trace, procedure):
    """Query 3: items written by *procedure* and its descendants."""
    written = defaultdict(int)
    for record in _by_descendants(trace, procedure):
        if record.op == "write":
            written[record.item] += 1
    return dict(written)


def aggregate(traces, label="aggregate"):
    """Merge traces from several runs into one (coverage union)."""
    merged = Trace(label)
    for trace in traces:
        merged.accesses.extend(trace.accesses)
        merged.allocations.extend(trace.allocations)
    return merged


def suggest_policy(trace, procedure):
    """Turn query 1 into a grant list for an sthread's context.

    Returns ``(grants, untaggable)``: *grants* maps ``tag_id -> "r"`` or
    ``"rw"`` for items in tagged memory; *untaggable* lists items in
    private/untagged memory that the programmer must first tag (via
    ``smalloc_on`` conversion or ``BOUNDARY_VAR``) before any policy can
    name them — the workflow of paper section 3.2.
    """
    grants = {}
    untaggable = []
    for item, info in memory_for_procedure(trace, procedure).items():
        mode = "rw" if "write" in info["modes"] else "r"
        if item.tag_id is not None:
            prev = grants.get(item.tag_id)
            grants[item.tag_id] = "rw" if "rw" in (prev, mode) else "r"
        else:
            untaggable.append((item, mode))
    return grants, untaggable


def traced_policy(trace, sthread_prefix):
    """Grants a trace shows a *compartment* (not a procedure) using.

    Where :func:`suggest_policy` slices the trace by backtrace
    procedure, this slices it by the accessing sthread's name prefix —
    the natural unit once the partition exists (``worker``,
    ``ssh-worker``, ``cg:password_gate``...).  Returns ``tag_id ->
    "r"/"rw"`` for tagged items only; used by ``repro.analysis`` as the
    dynamic leg of its three-way lint.
    """
    grants = {}
    for record in trace.accesses:
        if not record.sthread.startswith(sthread_prefix):
            continue
        if record.item.tag_id is None:
            continue
        mode = "rw" if record.op == "write" else "r"
        prev = grants.get(record.item.tag_id)
        grants[record.item.tag_id] = "rw" if "rw" in (prev, mode) \
            else mode
    return grants


def emulation_gaps(trace):
    """Accesses that only succeeded thanks to the emulation library.

    After refactoring, run the sthread under emulation with cb-log
    attached; this lists exactly the (item, mode) pairs missing from its
    policy (paper section 3.4).
    """
    gaps = defaultdict(set)
    for record in trace.accesses:
        if record.emulated:
            gaps[record.item].add(record.op)
    return dict(gaps)


def format_report(summary, *, title=""):
    """Human-readable rendering of a query-1 summary."""
    lines = [f"== {title}" if title else "== memory access summary"]
    for item, info in sorted(summary.items(),
                             key=lambda kv: -kv[1]["count"]):
        modes = "/".join(sorted(info["modes"]))
        lines.append(f"  {modes:10s} x{info['count']:<6d} {item!r}")
    return "\n".join(lines)
