"""cb-log: run-time memory-access tracing (paper sections 3.4 and 4.2).

Attaches to a kernel's memory bus and allocation hooks and records, for
every load and store, a complete backtrace plus the identity of the item
accessed:

* **globals** by variable name (we read the image's variable table the
  way the real cb-log reads debugging symbols);
* **heap** objects by the full backtrace of the original ``malloc`` /
  ``smalloc`` — the registry of live allocations is maintained from the
  kernel's alloc/free events;
* **stack** slots by the function whose frame covers the offset.

The backtrace walks live Python frames (function name, source file,
line number), skipping simulator-internal frames, exactly as the real
tool walks saved frame pointers — and with the same character of
overhead, which is what Figure 9 measures.

The sthread emulation library composes with cb-log (paper section 4.2):
accesses that *would* have faulted are traced with ``emulated=True``.
"""

from __future__ import annotations

import os
import sys

from repro.crowbar.records import (AccessRecord, AllocationRecord,
                                   FrameInfo, Item, Trace)

def _package_dir(module_name):
    import importlib
    module = importlib.import_module(module_name)
    return os.path.dirname(os.path.abspath(module.__file__)) + os.sep


#: Directories whose frames are simulator machinery, not application
#: code — the analogue of cb-log skipping its own instrumentation and
#: libc-internal frames.
_INTERNAL_DIRS = (
    _package_dir("repro.core"),
    _package_dir("repro.crowbar"),
    _package_dir("threading"),
)

_MAX_DEPTH = 40


def capture_backtrace(skip=2):
    """Walk the Python stack, outermost application frame first."""
    frames = []
    try:
        frame = sys._getframe(skip)
    except ValueError:
        return frames
    depth = 0
    while frame is not None and depth < _MAX_DEPTH:
        filename = frame.f_code.co_filename
        if not filename.startswith(_INTERNAL_DIRS):
            frames.append(FrameInfo(frame.f_code.co_name,
                                    os.path.basename(filename),
                                    frame.f_lineno))
        frame = frame.f_back
        depth += 1
    frames.reverse()
    return frames


class CbLog:
    """One attached tracing session; use as a context manager.

    ``with CbLog(kernel, label="login") as log: ... ; trace = log.trace``
    """

    def __init__(self, kernel, label=""):
        self.kernel = kernel
        self.trace = Trace(label)
        #: live allocations per segment id: list of AllocationRecord
        self._allocs = {}
        self._attached = False

    # -- attachment ------------------------------------------------------------

    def attach(self):
        if self._attached:
            return self
        # seed the registry with allocations made before tracing began,
        # so their accesses still resolve to a heap object (with an
        # unknown site) rather than to raw segment offsets
        for addr, (size, segment) in \
                self.kernel.live_allocations.items():
            record = AllocationRecord(addr, size, segment.name,
                                      segment.tag_id, [], "<pre-trace>")
            self._allocs.setdefault(segment.id, []).append(record)
        self.kernel.bus.add_hook(self._on_access)
        self.kernel.alloc_hooks.append(self._on_alloc_event)
        self._attached = True
        return self

    def detach(self):
        if not self._attached:
            return
        self.kernel.bus.remove_hook(self._on_access)
        self.kernel.alloc_hooks.remove(self._on_alloc_event)
        self._attached = False

    def __enter__(self):
        return self.attach()

    def __exit__(self, *exc):
        self.detach()
        return False

    # -- allocation registry -----------------------------------------------------

    def _on_alloc_event(self, event, addr, size, segment, sthread):
        if event == "alloc":
            record = AllocationRecord(addr, size, segment.name,
                                      segment.tag_id,
                                      capture_backtrace(skip=3),
                                      sthread.name)
            self._allocs.setdefault(segment.id, []).append(record)
            self.trace.allocations.append(record)
        elif event == "free":
            for record in self._allocs.get(segment.id, ()):
                if record.addr == addr and record.live:
                    record.live = False
                    break

    def _find_allocation(self, segment, addr):
        for record in reversed(self._allocs.get(segment.id, ())):
            if record.live and \
                    record.addr <= addr < record.addr + record.size:
                return record
        return None

    # -- access hook ----------------------------------------------------------------

    def _on_access(self, op, table, addr, size, segment, offset):
        item, item_offset = self._identify(table, addr, segment, offset)
        record = AccessRecord(op, item, item_offset, size,
                              capture_backtrace(skip=4),
                              table.owner_name,
                              emulated=table.emulation)
        self.trace.accesses.append(record)

    def _identify(self, table, addr, segment, offset):
        """Name the item covering this access (paper section 4.2)."""
        kind = segment.kind
        if kind in ("globals", "boundary"):
            var, inner = self._global_at(segment, offset)
            if var is not None:
                return (Item("global", var.name, segment.name,
                             segment.tag_id), inner)
            return (Item("global", f"<runtime-state+{offset:#x}>",
                         segment.name, segment.tag_id), 0)
        if kind in ("heap", "tag"):
            alloc = self._find_allocation(segment, addr)
            if alloc is not None:
                return (Item("heap", alloc.site(), segment.name,
                             segment.tag_id), addr - alloc.addr)
            return (Item("segment", f"<{segment.name} bookkeeping>",
                         segment.name, segment.tag_id), offset)
        if kind == "stack":
            func = self._stack_frame_at(segment, offset)
            if func is not None:
                return (Item("stack", func, segment.name, None), offset)
            return (Item("segment", f"<{segment.name}>", segment.name,
                         None), offset)
        return (Item("segment", segment.name, segment.name,
                     segment.tag_id), offset)

    def _global_at(self, segment, offset):
        image = self.kernel.image
        if image is not None and segment is image.segment:
            return image.var_at(offset)
        for section in self.kernel.boundary.sections():
            if section.segment is segment:
                return section.var_at(offset)
        return None, None

    def _stack_frame_at(self, segment, offset):
        for sthread in self.kernel.sthreads:
            if sthread.stack_segment is segment:
                return sthread.frame_for_offset(offset)
        return None


class PinStub:
    """"Pin without instrumentation": the baseline tool overhead.

    Figure 9 separates the cost of running under Pin at all from the
    cost of cb-log's added instrumentation.  This stub models the
    former: every access goes through a simulated code-cache lookup —
    a keyed dictionary hit plus a short fixed re-translation-amortised
    arithmetic loop — but records no backtraces and resolves no items.
    The constant below is calibrated so Pin-alone costs a small multiple
    of native on memory-dense kernels, as in the paper's Figure 9, while
    staying far below cb-log.
    """

    #: arithmetic steps charged per intercepted access (code-cache
    #: dispatch + the translated block's overhead instructions)
    DISPATCH_WORK = 24

    def __init__(self, kernel):
        self.kernel = kernel
        self.reads = 0
        self.writes = 0
        self.bytes = 0
        self.block_cache = {}
        self._attached = False

    def attach(self):
        if not self._attached:
            self.kernel.bus.add_hook(self._on_access)
            self._attached = True
        return self

    def detach(self):
        if self._attached:
            self.kernel.bus.remove_hook(self._on_access)
            self._attached = False

    def __enter__(self):
        return self.attach()

    def __exit__(self, *exc):
        self.detach()
        return False

    def _on_access(self, op, table, addr, size, segment, offset):
        if op == "read":
            self.reads += 1
        else:
            self.writes += 1
        self.bytes += size
        # code-cache dispatch: block key lookup + translation overhead
        key = addr >> 6
        hits = self.block_cache.get(key, 0)
        self.block_cache[key] = hits + 1
        x = key & 0xFFFF
        for _ in range(self.DISPATCH_WORK):
            x = (x * 1103515245 + 12345) & 0x7FFFFFFF
