"""Crowbar: the paper's partitioning-assistance tools.

``cb-log`` (:class:`CbLog`) records every memory access with a full
backtrace and allocation-site identity; ``cb-analyze`` answers the three
query types of paper section 3.4 over the resulting traces.
:class:`PinStub` models running under Pin with no instrumentation (the
middle bars of Figure 9).
"""

from repro.crowbar.analyze import (aggregate, emulation_gaps,
                                   format_report, memory_for_procedure,
                                   procedures_using, suggest_policy,
                                   traced_policy, writes_of_procedure)
from repro.crowbar.cblog import CbLog, PinStub, capture_backtrace
from repro.crowbar.records import (AccessRecord, AllocationRecord,
                                   FrameInfo, Item, Trace)

__all__ = ["AccessRecord", "AllocationRecord", "CbLog", "FrameInfo",
           "Item", "PinStub", "Trace", "aggregate", "capture_backtrace",
           "emulation_gaps", "format_report", "memory_for_procedure",
           "procedures_using", "suggest_policy", "traced_policy",
           "writes_of_procedure"]
