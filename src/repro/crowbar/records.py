"""Trace record types shared by cb-log and cb-analyze.

A trace is a list of :class:`AccessRecord` plus an allocation registry.
Records carry what paper section 4.2 says cb-log logs: the full
backtrace of every access (function, file, line), the *item* accessed —
a global identified by variable name, a heap object identified by the
backtrace of its original allocation, or a stack slot identified by the
owning function's frame — and the offset within that item.
"""

from __future__ import annotations

import json


class FrameInfo:
    """One backtrace frame: (function, file, line)."""

    __slots__ = ("func", "file", "line")

    def __init__(self, func, file, line):
        self.func = func
        self.file = file
        self.line = line

    def __repr__(self):
        return f"{self.func}@{self.file}:{self.line}"

    def to_json(self):
        return [self.func, self.file, self.line]

    @classmethod
    def from_json(cls, data):
        return cls(data[0], data[1], data[2])


class Item:
    """What was accessed: the unit a programmer grants privileges on.

    ``category`` is ``"global"``, ``"heap"``, ``"stack"`` or
    ``"segment"`` (fallback for untagged raw regions).  ``name`` is the
    variable name, the allocation-site string, or the frame function.
    ``tag_id`` is set when the item lives in tagged memory — the thing a
    policy can actually name.
    """

    __slots__ = ("category", "name", "segment_name", "tag_id")

    def __init__(self, category, name, segment_name, tag_id=None):
        self.category = category
        self.name = name
        self.segment_name = segment_name
        self.tag_id = tag_id

    def key(self):
        return (self.category, self.name, self.segment_name)

    def __repr__(self):
        tag = f" tag={self.tag_id}" if self.tag_id is not None else ""
        return f"<{self.category} {self.name!r} in {self.segment_name}{tag}>"

    def __eq__(self, other):
        return isinstance(other, Item) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def to_json(self):
        return [self.category, self.name, self.segment_name, self.tag_id]

    @classmethod
    def from_json(cls, data):
        return cls(data[0], data[1], data[2], data[3])


class AccessRecord:
    """One load or store."""

    __slots__ = ("op", "item", "offset", "size", "backtrace", "sthread",
                 "emulated")

    def __init__(self, op, item, offset, size, backtrace, sthread,
                 emulated=False):
        self.op = op
        self.item = item
        self.offset = offset
        self.size = size
        self.backtrace = backtrace      # outermost first
        self.sthread = sthread
        self.emulated = emulated

    def functions(self):
        return [frame.func for frame in self.backtrace]

    def innermost(self):
        return self.backtrace[-1] if self.backtrace else None

    def __repr__(self):
        where = self.innermost()
        return (f"<{self.op} {self.item!r}+{self.offset} x{self.size} "
                f"by {self.sthread} at {where}>")

    def to_json(self):
        return {
            "op": self.op,
            "item": self.item.to_json(),
            "offset": self.offset,
            "size": self.size,
            "backtrace": [f.to_json() for f in self.backtrace],
            "sthread": self.sthread,
            "emulated": self.emulated,
        }

    @classmethod
    def from_json(cls, data):
        return cls(data["op"], Item.from_json(data["item"]),
                   data["offset"], data["size"],
                   [FrameInfo.from_json(f) for f in data["backtrace"]],
                   data["sthread"], data.get("emulated", False))


class AllocationRecord:
    """Where a heap object came from (its original malloc/smalloc)."""

    __slots__ = ("addr", "size", "segment_name", "tag_id", "backtrace",
                 "sthread", "live")

    def __init__(self, addr, size, segment_name, tag_id, backtrace,
                 sthread):
        self.addr = addr
        self.size = size
        self.segment_name = segment_name
        self.tag_id = tag_id
        self.backtrace = backtrace
        self.sthread = sthread
        self.live = True

    def site(self):
        """The allocation-site string programmers grep for."""
        if not self.backtrace:
            return f"<pre-trace alloc in {self.segment_name}>"
        inner = self.backtrace[-1]
        return f"{inner.file}:{inner.line}:{inner.func}"

    def __repr__(self):
        return (f"<alloc 0x{self.addr:x} x{self.size} at {self.site()} "
                f"by {self.sthread}>")


class Trace:
    """A complete cb-log run: accesses plus the allocation registry."""

    def __init__(self, label=""):
        self.label = label
        self.accesses = []
        self.allocations = []

    def __len__(self):
        return len(self.accesses)

    def save(self, path):
        """Serialise to a JSON-lines file (for aggregation workflows)."""
        with open(path, "w") as f:
            f.write(json.dumps({"label": self.label}) + "\n")
            for record in self.accesses:
                f.write(json.dumps(record.to_json()) + "\n")

    @classmethod
    def load(cls, path):
        with open(path) as f:
            header = json.loads(f.readline())
            trace = cls(header.get("label", ""))
            for line in f:
                trace.accesses.append(AccessRecord.from_json(
                    json.loads(line)))
        return trace
