"""The sharded multi-kernel cluster behind the partitioned balancer.

A :class:`Cluster` is the paper's compartment story scaled out one
level: instead of sthreads inside one kernel, whole *kernels* become
the fault domain.  N simulated kernels (``node0`` .. ``nodeN-1``) each
host R httpd replicas plus one :class:`~repro.cluster.health.
HealthResponder`, all sharing the node's kernel — so killing the kernel
takes down everything on the node at once, exactly like powering off a
machine.  An ``lb`` app (its own kernel, its own compartments) fronts
the lot.

The chaos verbs are :meth:`Cluster.kill_kernel` (syscalls refuse with
:class:`~repro.core.errors.KernelDead`, listeners close, in-flight
probes get typed errors — never hangs) and :meth:`Cluster.revive`
(a fresh kernel at the same addresses; the balancer's half-open probes
re-admit the replicas without anyone telling it).
"""

from __future__ import annotations

import time

from repro.apps.httpd.content import build_request
from repro.apps.httpd.monolithic import MonolithicHttpd
from repro.cluster.health import HealthResponder
from repro.cluster.ring import DEFAULT_VNODES
from repro.core.errors import WedgeError
from repro.core.kernel import Kernel
from repro.crypto.rng import DetRNG
from repro.net import Network
from repro.tls.client import TlsClient


class ClusterNode:
    """One simulated machine: a kernel, R replicas, a health endpoint."""

    def __init__(self, cluster, index):
        self.cluster = cluster
        self.index = index
        self.name = f"node{index}"
        self.alive = True
        self.incarnation = 0
        self.kernel = None
        self.responder = None
        self.replicas = []
        self._build()

    @property
    def health_addr(self):
        return f"{self.name}:health"

    def replica_name(self, r):
        return f"{self.name}-r{r}"

    def replica_addr(self, r):
        return f"{self.replica_name(r)}:443"

    def _build(self):
        c = self.cluster
        self.kernel = Kernel(net=c.network, name=self.name)
        self.kernel.start_main()
        self.responder = HealthResponder(c.network, self.health_addr,
                                         kernel=self.kernel)
        self.replicas = [
            MonolithicHttpd(c.network, self.replica_addr(r),
                            seed=c.seed, kernel=self.kernel,
                            instance=(f"{self.replica_name(r)}"
                                      f"~{self.incarnation}"),
                            cache_addr=c.kv_addr,
                            cache_seed=self.index * 97 + r)
            for r in range(c.replicas_per_kernel)]

    def start(self):
        self.responder.start()
        for replica in self.replicas:
            replica.start()

    def stop(self):
        for replica in self.replicas:
            replica.stop()
        self.responder.stop()

    def kill(self):
        """Power the node off: every syscall after this refuses."""
        self.alive = False
        self.kernel.kill()
        self.stop()     # join the (now returning) service threads

    def revive(self):
        """A replacement machine at the same addresses."""
        if self.alive:
            raise WedgeError(f"{self.name} is already alive")
        self.incarnation += 1
        self._build()
        self.start()
        self.alive = True


class Cluster:
    """N kernels of httpd replicas behind the Wedge-partitioned lb."""

    def __init__(self, network=None, *, kernels=3, replicas=2,
                 seed="httpd", vnodes=DEFAULT_VNODES, failure_threshold=1,
                 breaker_policy=None, probe_timeout=2.0,
                 clock=time.monotonic, supervise=None, lb_addr="lb:443",
                 cache=False, kv_addr="kv:9090", kv_durable=False,
                 kv_disk=None):
        # deferred: repro.apps.lb imports repro.cluster.ring, so pulling
        # LbServer in at module scope would be a circular import
        from repro.apps.lb.server import LbServer

        self.network = network if network is not None else Network()
        self.seed = seed
        self.replicas_per_kernel = int(replicas)
        #: the shared cache tier (``cache=True``): one kv kernel every
        #: replica's cache-aside client points at — a page rendered by
        #: any replica is a hit for all of them.  The kv server runs
        #: ``concurrent=True`` because each replica parks a persistent
        #: pipelined connection on it.  With ``kv_durable=True`` the kv
        #: kernel mounts a :class:`~repro.disk.SimDisk` and WALs every
        #: mutation, so :meth:`kill_kv` / :meth:`revive_kv` re-warm the
        #: tier instead of restarting it cold.
        self.kv = None
        self.kv_addr = kv_addr if cache else None
        self.kv_durable = bool(kv_durable) or kv_disk is not None
        self._kv_disk = kv_disk
        self.kv_incarnation = 0
        if cache:
            self.kv = self._build_kv()
        self.nodes = [ClusterNode(self, k) for k in range(int(kernels))]
        backends = []
        for node in self.nodes:
            for r in range(self.replicas_per_kernel):
                backends.append({"name": node.replica_name(r),
                                 "addr": node.replica_addr(r),
                                 "health": node.health_addr})
        self.lb = LbServer(self.network, lb_addr, backends,
                           vnodes=vnodes,
                           failure_threshold=failure_threshold,
                           breaker_policy=breaker_policy,
                           probe_timeout=probe_timeout, clock=clock,
                           supervise=supervise)
        # every replica derives the same key from the shared seed, so
        # one pin covers the whole cluster (and failover re-handshakes
        # verify against the same identity)
        self.lb.public_key = self.nodes[0].replicas[0].public_key
        self._started = False

    def _build_kv(self):
        from repro.apps.kv import KvServer
        server = KvServer(self.network, self.kv_addr, concurrent=True,
                          durable=self.kv_durable, disk=self._kv_disk,
                          name=f"kv~{self.kv_incarnation}")
        if self.kv_durable:
            # every incarnation mounts the *same* platter, so a revive
            # after a power loss replays the WAL into the fresh kernel
            self._kv_disk = server.disk
        return server

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        if self._started:
            raise WedgeError("cluster already started")
        if self.kv is not None:
            self.kv.start()     # before the replicas that dial it
        for node in self.nodes:
            node.start()
        self.lb.start()
        self._started = True
        return self

    def stop(self):
        self.lb.stop()
        for node in self.nodes:
            if node.alive:
                node.stop()
        if self.kv is not None:
            self.kv.stop()      # last: replicas close their clients first
        self._started = False

    # -- chaos verbs -------------------------------------------------------

    def node(self, name):
        for node in self.nodes:
            if node.name == name:
                return node
        raise WedgeError(f"no such node: {name!r}")

    def kill_kernel(self, name):
        """Kill a whole node; returns the backend names it hosted."""
        node = self.node(name)
        node.kill()
        return [node.replica_name(r)
                for r in range(self.replicas_per_kernel)]

    def revive(self, name):
        self.node(name).revive()

    def kill_kv(self, *, power_loss=False, seed=None):
        """Power off the cache tier's kernel (optionally mid-flush)."""
        if self.kv is None:
            raise WedgeError("cluster has no cache tier")
        try:
            self.kv.stop()
        except WedgeError:
            pass
        self.kv.kernel.kill(power_loss=power_loss, seed=seed)

    def revive_kv(self):
        """A replacement kv kernel; durable tiers re-warm from the WAL.

        Returns the recovery result dict (``None`` for a non-durable
        tier, which comes back cold).
        """
        if self.kv is None:
            raise WedgeError("cluster has no cache tier")
        if self.kv.kernel.alive:
            raise WedgeError("kv kernel is already alive")
        self.kv_incarnation += 1
        self.kv = self._build_kv()
        if self._started:
            self.kv.start()
        return self.kv.last_recovery

    # -- client helpers ----------------------------------------------------

    def backend_index(self, backend_name):
        for i, b in enumerate(self.lb.backends):
            if b["name"] == backend_name:
                return i
        raise WedgeError(f"no such backend: {backend_name!r}")

    def make_client(self, label):
        return TlsClient(DetRNG(f"cluster-{label}"),
                         expected_server_key=self.lb.public_key)

    def request(self, key, path="/", *, client=None, resume=True,
                timeout=10.0):
        """One end-to-end request through the balancer.

        Sends the 8-byte routing *key*, handshakes TLS end-to-end with
        whichever replica the router picked, and returns the plaintext
        response (which must be byte-identical no matter the replica).
        """
        from repro.apps.lb.server import ROUTE_KEY_LEN, encode_preamble
        key = bytes(key)
        if len(key) != ROUTE_KEY_LEN:
            raise WedgeError(
                f"routing key must be {ROUTE_KEY_LEN} bytes")
        if client is None:
            client = self.make_client(key.hex())
        sock = self.network.connect(self.lb.addr)
        try:
            sock.send(encode_preamble(key))
            conn = client.handshake(sock, resume=resume, timeout=timeout)
            return conn.request(build_request(path))
        finally:
            sock.close()

    # -- observability -----------------------------------------------------

    def observers(self):
        """Every kernel's observer, lb first (for cross-kernel stitch)."""
        extra = [self.kv.kernel.observe] if self.kv is not None else []
        return ([self.lb.kernel.observe] + extra
                + [node.kernel.observe for node in self.nodes
                   if node.alive])

    def tracers(self):
        return [obs.tracer for obs in self.observers()
                if obs.tracer is not None]
