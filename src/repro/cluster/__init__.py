"""``repro.cluster`` — N kernels, replicas, and a partitioned balancer.

Everything before this package ran on one simulated kernel, so one
kernel crash meant total outage.  The cluster layer makes whole-kernel
death a survivable, observable event:

* :mod:`repro.cluster.ring` — the consistent-hash ring (vnode points,
  preference-order walks, a compact wire form the lb router keeps in
  private tagged memory);
* :mod:`repro.cluster.health` — the per-node :class:`HealthResponder`
  the lb health-checker probes over the wire;
* :mod:`repro.cluster.cluster` — :class:`Cluster`: boots N kernels of
  httpd replicas behind a Wedge-partitioned ``lb`` app, with
  :meth:`~Cluster.kill_kernel` / :meth:`~Cluster.revive` as the chaos
  verbs;
* :mod:`repro.cluster.campaign` — the ``python -m repro cluster``
  campaign (goodput-vs-replica scaling, seeded whole-kernel kill,
  byte-identical admitted responses, BENCH_cluster.json).
"""

from repro.cluster.ring import HashRing
from repro.cluster.health import HealthResponder
from repro.cluster.cluster import Cluster

__all__ = ["Cluster", "HashRing", "HealthResponder"]
