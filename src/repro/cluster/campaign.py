"""The ``python -m repro cluster`` campaign: scale it, then kill it.

Two legs, both seeded and deterministic:

**Scaling** — build the cluster at 1..N kernels and serve the same
request mix at each size.  Goodput must stay total (every request
served), and the *modeled* aggregate capacity — replicas divided by the
mean backend cycles per request, i.e. what independent kernels would
sustain side by side — must grow linearly with the kernel count: adding
machines must not make each request more expensive.

**Kill** — serve rounds of requests against a full-size cluster twice:
once clean (the baseline observations), once with a seeded
:class:`~repro.faults.KernelFailure` powering off a whole kernel
mid-campaign.  The contract:

* every admitted request is served **byte-identical** to the no-kill
  baseline (failover re-handshakes against the same pinned key and the
  same content);
* the dead kernel's replicas are ejected within the breaker failure
  threshold, asserted via ``cluster.ejected`` events;
* after ejection **no routing decision ever includes a dead replica**
  (a replay of the router's audit trail);
* at least one TLS session resumes across the campaign (the
  consistent-hash ring keeps sessions on their replica);
* reviving the node re-admits its replicas through half-open probes
  (``cluster.recovered`` events), and the cross-kernel span stitcher
  links lb traces to backend traces through shared connection ids.

The artifact rides the overload-benchmark rails: every checked metric
ends in ``_goodput`` (lower than baseline = regression) and lands in
``BENCH_cluster.json`` via the same writer/checker.
"""

from __future__ import annotations

import time

from repro.cluster.cluster import Cluster
from repro.core.errors import WedgeError
from repro.faults.kernelfail import KernelFailure
from repro.faults.plan import FaultPlan
from repro.observe.events import (CLUSTER_EJECTED, CLUSTER_FAILOVER,
                                  CLUSTER_RECOVERED)
from repro.observe.observer import Observer
from repro.observe.trace import stitch
from repro.resilience.breaker import BreakerPolicy

#: Default request-mix size per leg (distinct routing keys).
DEFAULT_REQUESTS = 8
#: Default rounds for the kill leg (the seeded kill lands mid-window).
DEFAULT_ROUNDS = 7
#: Modeled capacity may deviate this much from perfectly linear.
LINEARITY_TOLERANCE = 0.25
#: Give the revived node this many sweeps to win back admission.
MAX_RECOVERY_SWEEPS = 5


def _keys(count):
    return [f"k{i:07d}".encode() for i in range(count)]


def _campaign_breaker():
    # cooldown 0.0: probe admission depends only on control flow, so
    # campaigns are reproducible per seed (chaos harness precedent)
    return BreakerPolicy(cooldown=0.0)


class ClusterReport:
    """What one campaign measured and whether the contract held."""

    def __init__(self, *, kernels, replicas, requests, rounds, seed):
        self.kernels = kernels
        self.replicas = replicas
        self.requests = requests
        self.rounds = rounds
        self.seed = seed
        #: per-size scaling rows: {kernels, served, issued, cycles_per
        #: _request, capacity, wall}
        self.scaling = []
        self.linearity = None
        self.victim = None
        self.kill_round = None
        self.killed_backends = []
        self.kill_issued = 0
        self.kill_served = 0
        self.kill_identical = 0
        self.outage_issued = 0
        self.outage_served = 0
        self.sweeps_to_eject = None
        self.recovery_sweeps = None
        self.resumed_sessions = 0
        self.failovers = 0
        self.stitched_traces = 0
        self.kill_wall = 0.0
        self.violations = []

    @property
    def passed(self):
        return not self.violations

    # -- derived metrics ---------------------------------------------------

    def kill_goodput(self):
        if not self.kill_issued:
            return 1.0
        return self.kill_identical / self.kill_issued

    def availability(self):
        if not self.outage_issued:
            return 1.0
        return self.outage_served / self.outage_issued

    def artifact(self):
        """The ``BENCH_cluster.json`` payload (overload-checker rails)."""
        metrics = {}
        wall = {}
        for row in self.scaling:
            metrics[f"scale{row['kernels']}_goodput"] = round(
                row["served"] / row["issued"], 4)
            wall[f"scale{row['kernels']}_seconds"] = row["wall"]
        if self.linearity is not None:
            metrics["linearity_goodput"] = round(self.linearity, 4)
        if self.kill_round is not None:
            metrics["kill_goodput"] = round(self.kill_goodput(), 4)
            metrics["availability_goodput"] = round(self.availability(), 4)
            wall["kill_seconds"] = self.kill_wall
        info = {
            "kernels": self.kernels,
            "replicas_per_kernel": self.replicas,
            "requests": self.requests,
            "rounds": self.rounds,
            "seed": self.seed,
            "victim": self.victim,
            "kill_round": self.kill_round,
            "killed_backends": self.killed_backends,
            "sweeps_to_eject": self.sweeps_to_eject,
            "recovery_sweeps": self.recovery_sweeps,
            "resumed_sessions": self.resumed_sessions,
            "failovers": self.failovers,
            "stitched_traces": self.stitched_traces,
            "capacity": {str(row["kernels"]): row["capacity"]
                         for row in self.scaling},
            "passed": self.passed,
        }
        return {"artifact": "cluster", "metrics": metrics, "wall": wall,
                "info": info}

    def format(self):
        lines = [f"cluster kernels={self.kernels} "
                 f"replicas={self.replicas} seed={self.seed}: "
                 f"{'PASS' if self.passed else 'FAIL'}"]
        for row in self.scaling:
            lines.append(
                f"  scale {row['kernels']}x{self.replicas}: "
                f"{row['served']}/{row['issued']} served, "
                f"{row['cycles_per_request']:,d} cycles/request, "
                f"capacity {row['capacity']:.2f} req/Mcycle")
        if self.linearity is not None:
            lines.append(f"  linear scaling: {self.linearity:.2f} of "
                         f"ideal (floor {1 - LINEARITY_TOLERANCE:.2f})")
        if self.kill_round is not None:
            lines.append(
                f"  kill: {self.victim} at round {self.kill_round} "
                f"(backends {', '.join(self.killed_backends)})")
            lines.append(
                f"  served {self.kill_served}/{self.kill_issued} "
                f"({self.kill_identical} byte-identical to baseline), "
                f"availability under kill "
                f"{self.availability():.2%}")
            lines.append(
                f"  ejected in {self.sweeps_to_eject} sweep(s), "
                f"re-admitted in {self.recovery_sweeps} sweep(s) after "
                f"revive; {self.failovers} failovers, "
                f"{self.resumed_sessions} resumed sessions")
            lines.append(
                f"  {self.stitched_traces} cross-kernel stitched traces")
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


# -- the legs -----------------------------------------------------------------


def _build(kernels, replicas, *, failure_threshold=1):
    return Cluster(kernels=kernels, replicas=replicas,
                   failure_threshold=failure_threshold,
                   breaker_policy=_campaign_breaker(), probe_timeout=1.0)


def _node_cycles(cluster):
    return sum(node.kernel.costs.cycles() for node in cluster.nodes
               if node.alive)


def _scaling_leg(report, keys):
    capacities = {}
    for k in range(1, report.kernels + 1):
        cluster = _build(k, report.replicas)
        cluster.start()
        served = 0
        before = _node_cycles(cluster)
        start = time.perf_counter()
        try:
            cluster.lb.health_sweep()
            for key in keys:
                try:
                    if cluster.request(key, resume=False):
                        served += 1
                except WedgeError:
                    pass
            cycles = _node_cycles(cluster) - before
        finally:
            cluster.stop()
        wall = time.perf_counter() - start
        per_request = max(1, cycles // max(1, served))
        n_replicas = k * report.replicas
        # independent kernels run side by side: aggregate modeled
        # capacity is replicas over the per-request cost
        capacity = n_replicas / per_request * 1_000_000
        capacities[k] = capacity
        report.scaling.append({
            "kernels": k, "issued": len(keys), "served": served,
            "cycles_per_request": per_request,
            "capacity": round(capacity, 4), "wall": round(wall, 4)})
        if served < len(keys):
            report.violations.append(
                f"scale {k}: only {served}/{len(keys)} served")
    ideal = capacities[1]
    report.linearity = min(
        capacities[k] / (k * ideal) for k in capacities)
    if report.linearity < 1 - LINEARITY_TOLERANCE:
        report.violations.append(
            f"capacity is sub-linear: {report.linearity:.2f} of ideal")


def _cluster_events(observers, kind):
    return [e for obs in observers for e in obs.recorder.last()
            if e.kind == kind]


def _kill_leg(report, keys):
    # baseline pass: the same rounds, nobody dies
    baseline = {}
    cluster = _build(report.kernels, report.replicas)
    cluster.start()
    try:
        cluster.lb.health_sweep()
        for key in keys:
            baseline[key] = cluster.request(key, resume=False)
    finally:
        cluster.stop()

    # kill pass: a seeded KernelFailure takes one kernel down mid-run
    cluster = _build(report.kernels, report.replicas)
    observers = [Observer(cluster.lb.kernel).attach()]
    observers += [Observer(node.kernel).attach()
                  for node in cluster.nodes]
    plan = FaultPlan(report.seed)
    failure = KernelFailure(plan, [n.name for n in cluster.nodes],
                            window=(2, max(3, report.rounds - 2)))
    clients = {key: cluster.make_client(key.hex()) for key in keys}
    start = time.perf_counter()
    cluster.start()
    try:
        cluster.lb.health_sweep()
        dead_backends = set()
        audit_at_eject = None
        for round_no in range(report.rounds):
            victim = failure.step()
            if victim is not None:
                report.victim = victim
                report.kill_round = round_no
                report.killed_backends = cluster.kill_kernel(victim)
            for key in keys:
                report.kill_issued += 1
                if failure.killed and report.recovery_sweeps is None:
                    report.outage_issued += 1
                try:
                    response = cluster.request(key, client=clients[key])
                except WedgeError:
                    continue
                report.kill_served += 1
                if failure.killed and report.recovery_sweeps is None:
                    report.outage_served += 1
                if response == baseline[key]:
                    report.kill_identical += 1
                if clients[key].last_resumed:
                    report.resumed_sessions += 1
            sweep = cluster.lb.health_sweep()
            if failure.killed and report.sweeps_to_eject is None:
                ejected = {e.fields["backend"] for e in _cluster_events(
                    observers, CLUSTER_EJECTED)}
                if set(report.killed_backends) <= ejected:
                    report.sweeps_to_eject = round_no - report.kill_round + 1
                    dead_backends = {cluster.backend_index(name)
                                     for name in report.killed_backends}
                    audit_at_eject = len(cluster.lb.audit)
            if (failure.killed and report.sweeps_to_eject is not None
                    and report.recovery_sweeps is None
                    and round_no >= report.kill_round + 1):
                # the replacement machine comes up; half-open probes
                # must re-admit it without operator involvement
                cluster.revive(report.victim)
                for attempt in range(1, MAX_RECOVERY_SWEEPS + 1):
                    cluster.lb.health_sweep()
                    recovered = {e.fields["backend"]
                                 for e in _cluster_events(
                                     observers, CLUSTER_RECOVERED)}
                    if set(report.killed_backends) <= recovered:
                        report.recovery_sweeps = attempt
                        break
                if report.recovery_sweeps is None:
                    report.violations.append(
                        f"revived {report.victim} not re-admitted in "
                        f"{MAX_RECOVERY_SWEEPS} sweeps")
                    report.recovery_sweeps = -1

        # the no-dead-routing proof: replay the audit trail from the
        # moment of ejection; no decision may offer a dead replica
        # until the health table shows the node re-admitted
        if audit_at_eject is not None:
            for decision in cluster.lb.audit[audit_at_eject:]:
                if all(decision["alive"][d] for d in dead_backends):
                    break              # health restored; later rows ok
                if set(decision["order"]) & dead_backends:
                    report.violations.append(
                        f"request routed to dead replica after "
                        f"ejection: {decision}")
                    break
        report.failovers = len(
            _cluster_events(observers, CLUSTER_FAILOVER))
        report.kill_wall = round(time.perf_counter() - start, 4)

        if report.kill_round is None:
            report.violations.append("the seeded kill never fired")
        if report.sweeps_to_eject is None:
            report.violations.append(
                "dead replicas were never ejected (no cluster.ejected "
                "events for the victim's backends)")
        elif report.sweeps_to_eject > max(
                1, cluster.lb._health_trusted["threshold"]):
            report.violations.append(
                f"ejection took {report.sweeps_to_eject} sweeps "
                f"(threshold "
                f"{cluster.lb._health_trusted['threshold']})")
        if report.kill_identical < report.kill_served:
            report.violations.append(
                f"{report.kill_served - report.kill_identical} served "
                f"responses deviated from the no-kill baseline")
        if report.outage_issued and \
                report.outage_served < report.outage_issued:
            report.violations.append(
                f"availability under kill: only {report.outage_served}"
                f"/{report.outage_issued} served during the outage")
        if not report.resumed_sessions:
            report.violations.append(
                "no TLS session resumed (ring stability broken?)")
        groups = stitch([obs.tracer for obs in observers])
        report.stitched_traces = sum(
            1 for g in groups
            if len({t[0] for t in g["traces"]}) > 1)
        if not report.stitched_traces:
            report.violations.append(
                "span stitching linked no lb trace to a backend trace")
    finally:
        cluster.stop()
        for obs in observers:
            obs.detach()


def run_cluster(*, kernels=3, replicas=2, requests=DEFAULT_REQUESTS,
                rounds=DEFAULT_ROUNDS, seed=0, kill=True, scaling=True):
    """Run the cluster campaign; returns a :class:`ClusterReport`."""
    report = ClusterReport(kernels=kernels, replicas=replicas,
                           requests=requests, rounds=rounds, seed=seed)
    keys = _keys(requests)
    if scaling:
        _scaling_leg(report, keys)
    if kill:
        _kill_leg(report, keys)
    return report
