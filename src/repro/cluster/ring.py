"""Consistent-hash ring with virtual nodes and preference orders.

The lb router keeps one of these, serialized, in private tagged memory
(the ``lb-ring`` tag): the route gate deserializes the blob under its
own compartment's privileges on every invocation, so the ring's shape
is never readable from the network-facing listener.

Properties the cluster leans on:

* **Stability** — a key maps to the same replica for the life of the
  ring, so the httpd TLS session cache keeps hitting (the same backend
  sees every resumption of a session it created).
* **Bounded remapping** — removing one replica from the alive set moves
  only the keys whose preference walk started at that replica's vnodes
  (≈1/N of the keyspace); everyone else keeps their primary.
* **Deterministic failover order** — :meth:`HashRing.order` is the
  clockwise walk from the key's point, so every router instance agrees
  on who takes over when a replica is ejected.
"""

from __future__ import annotations

import bisect
import hashlib
import struct

from repro.core.errors import WedgeError

DEFAULT_VNODES = 16
_SALT = b"wedge-ring:"


def _point(data):
    """A ring position: the first 8 bytes of a salted SHA-256."""
    return int.from_bytes(
        hashlib.sha256(_SALT + data).digest()[:8], "big")


class HashRing:
    """Vnode consistent hashing over an ordered list of member names."""

    def __init__(self, names, *, vnodes=DEFAULT_VNODES):
        self.names = [str(n) for n in names]
        if not self.names:
            raise WedgeError("a hash ring needs at least one member")
        self.vnodes = int(vnodes)
        points = []
        for index, name in enumerate(self.names):
            for v in range(self.vnodes):
                points.append((_point(f"{name}#{v}".encode()), index))
        points.sort()
        self._points = points
        self._keys = [p for p, _ in points]

    # -- routing -----------------------------------------------------------

    def order(self, key, alive=None):
        """Preference order of member indices for *key*.

        The clockwise walk from the key's ring position, first
        occurrence of each member wins.  *alive* (an index -> truthy
        mapping or sequence) filters the walk; the primary of a dead
        member fails over to the next distinct member on the ring.
        """
        start = bisect.bisect_right(self._keys, _point(bytes(key)))
        seen = []
        n = len(self._points)
        for step in range(n):
            index = self._points[(start + step) % n][1]
            if index not in seen:
                seen.append(index)
        if alive is not None:
            seen = [i for i in seen if alive[i]]
        return seen

    def route(self, key, alive=None):
        """The chosen member index for *key*, or None if nobody is up."""
        order = self.order(key, alive=alive)
        return order[0] if order else None

    # -- wire form ---------------------------------------------------------

    def serialize(self):
        """Compact blob the router keeps in the ``lb-ring`` tag."""
        out = [struct.pack(">HH", len(self.names), self.vnodes)]
        for name in self.names:
            encoded = name.encode()
            out.append(struct.pack(">H", len(encoded)))
            out.append(encoded)
        out.append(struct.pack(">I", len(self._points)))
        for point, index in self._points:
            out.append(struct.pack(">QH", point, index))
        return b"".join(out)

    @classmethod
    def deserialize(cls, blob):
        blob = bytes(blob)
        try:
            n_names, vnodes = struct.unpack_from(">HH", blob, 0)
            offset = 4
            names = []
            for _ in range(n_names):
                (length,) = struct.unpack_from(">H", blob, offset)
                offset += 2
                names.append(blob[offset:offset + length].decode())
                offset += length
            (n_points,) = struct.unpack_from(">I", blob, offset)
            offset += 4
            points = []
            for _ in range(n_points):
                point, index = struct.unpack_from(">QH", blob, offset)
                offset += 10
                points.append((point, index))
        except (struct.error, UnicodeDecodeError) as exc:
            raise WedgeError(f"corrupt ring blob: {exc}") from exc
        ring = cls.__new__(cls)
        ring.names = names
        ring.vnodes = vnodes
        ring._points = points
        ring._keys = [p for p, _ in points]
        if not points:
            raise WedgeError("corrupt ring blob: no points")
        return ring

    def __repr__(self):
        return (f"<HashRing members={len(self.names)} "
                f"vnodes={self.vnodes}>")
