"""The per-node health endpoint the lb health-checker probes.

One :class:`HealthResponder` runs on every cluster node, answering the
four-byte ``ping`` with ``OK`` over a fresh connection.  It shares the
node's kernel with the app replicas, so its liveness *is* the node's
liveness: a killed kernel closes the responder's listener with
everything else, and the health-checker's next probe maps to the typed
:class:`~repro.core.errors.ConnectionRefused` — never a hang (the
connect-vs-close race fix extends to the probe path).
"""

from __future__ import annotations

import threading

from repro.core.errors import KernelDead, WedgeError
from repro.core.kernel import Kernel
from repro.net.serve import start_accept_loop

PING = b"ping"
PONG = b"OK"


class HealthResponder:
    """Answer ``ping`` with ``OK`` on *addr*; one per cluster node."""

    def __init__(self, network, addr, *, kernel=None, name="health"):
        self.network = network
        self.addr = addr
        if kernel is None:
            kernel = Kernel(net=network, name=name)
        self.kernel = kernel
        self.main = (kernel.main if kernel.main is not None
                     else kernel.start_main())
        self._listen_fd = None
        self._runner = None
        self._stop = threading.Event()
        self.probes_answered = 0
        self.errors = []

    def start(self):
        if self._runner is not None:
            raise WedgeError("responder already started")
        self._listen_fd = self.kernel.listen(self.addr)
        self._runner = start_accept_loop(
            self.kernel, self._listen_fd, self._on_conn,
            stop=self._stop, name=f"health:{self.addr}")
        return self

    def stop(self):
        self._stop.set()
        try:
            self.kernel.close(self._listen_fd)
        except WedgeError:
            pass
        if self._runner is not None:
            self._runner.join(5.0)

    def _on_conn(self, conn_fd):
        return lambda: self._answer(conn_fd)

    def _answer(self, conn_fd):
        kernel = self.kernel
        try:
            if kernel.recv_exact(conn_fd, len(PING),
                                 timeout=2.0) == PING:
                kernel.send(conn_fd, PONG)
                self.probes_answered += 1
        except KernelDead:
            return
        except WedgeError as exc:
            self.errors.append(f"{type(exc).__name__}: {exc}")
        finally:
            try:
                kernel.close(conn_fd)
            except WedgeError:
                pass
