"""Rendering for ``python -m repro lint`` reports."""

from __future__ import annotations

from repro.core.policy import FD_READ, FD_WRITE


def _fd_mode(bits):
    if bits is None:
        return "-"
    out = ""
    out += "r" if bits & FD_READ else ""
    out += "w" if bits & FD_WRITE else ""
    return out or "-"


def _grant_rows(result):
    """(subject, declared, static, traced) rows for one compartment."""
    declared, static, traced = (result.declared, result.static,
                                result.traced)
    rows = []
    labels = sorted(set(declared.mem) | set(static.mem)
                    | (set(traced.mem) if traced else set()))
    for label in labels:
        rows.append((f"mem:{label}",
                     declared.mem.get(label, "-"),
                     static.mem.get(label, "-"),
                     traced.mem.get(label, "-") if traced else "n/a"))
    for fd in sorted(set(declared.fds) | set(static.fds)):
        rows.append((f"fd:{fd}",
                     _fd_mode(declared.fds.get(fd)),
                     _fd_mode(static.fds.get(fd)),
                     "n/a"))
    for gate in sorted(declared.gates | static.gates):
        rows.append((f"cgate:{gate}",
                     "yes" if gate in declared.gates else "-",
                     "call" if gate in static.gates else "-",
                     "n/a"))
    return rows


def format_compartment(result):
    """A report block for one compartment."""
    spec = result.spec
    flags = []
    if spec.exploit_facing:
        flags.append("exploit-facing")
    if spec.sid:
        flags.append(f"sid={spec.sid}")
    header = f"[{spec.app}/{spec.name}]"
    if flags:
        header += "  (" + ", ".join(flags) + ")"
    lines = [header]

    rows = _grant_rows(result)
    widths = [max([len(r[i]) for r in rows] + [8])
              for i in range(4)] if rows else [8, 8, 8, 8]
    head = ("grant", "declared", "static", "traced")
    widths = [max(w, len(h)) for w, h in zip(widths, head)]
    fmt = ("  {:<%d}  {:>%d}  {:>%d}  {:>%d}" % tuple(widths))
    lines.append(fmt.format(*head))
    for row in rows:
        lines.append(fmt.format(*row))
    if result.static.syscalls:
        lines.append("  syscalls: "
                     + " ".join(sorted(result.static.syscalls)))
    if result.inferred.unresolved:
        lines.append(f"  unresolved operands: "
                     f"{len(result.inferred.unresolved)}")
        for context, source in result.inferred.unresolved:
            lines.append(f"    [{context}] {source}")
    if not result.inferred.converged:
        lines.append("  WARNING: fixpoint did not converge")

    if result.findings:
        for finding in result.findings:
            lines.append(f"  {finding.severity.upper():<7} "
                         f"{finding.kind:<18} {finding.subject}: "
                         f"{finding.detail}")
    else:
        lines.append("  findings: none")
    return "\n".join(lines)


def format_report(results, *, title="least-privilege lint"):
    """The full report over many compartments."""
    lines = [f"== {title} ==", ""]
    for result in results:
        lines.append(format_compartment(result))
        lines.append("")
    errors = sum(len(r.errors) for r in results)
    warnings = sum(len(r.warnings) for r in results)
    lines.append(f"{len(results)} compartments analyzed: "
                 f"{errors} errors, {warnings} warnings")
    return "\n".join(lines)
