"""Rendering for ``python -m repro lint`` reports (text and JSON)."""

from __future__ import annotations

from repro.core.policy import FD_READ, FD_WRITE


def _fd_mode(bits):
    if bits is None:
        return "-"
    out = ""
    out += "r" if bits & FD_READ else ""
    out += "w" if bits & FD_WRITE else ""
    return out or "-"


def _grant_rows(result):
    """(subject, declared, static, traced) rows for one compartment."""
    declared, static, traced = (result.declared, result.static,
                                result.traced)
    rows = []
    labels = sorted(set(declared.mem) | set(static.mem)
                    | (set(traced.mem) if traced else set()))
    for label in labels:
        rows.append((f"mem:{label}",
                     declared.mem.get(label, "-"),
                     static.mem.get(label, "-"),
                     traced.mem.get(label, "-") if traced else "n/a"))
    for fd in sorted(set(declared.fds) | set(static.fds)):
        rows.append((f"fd:{fd}",
                     _fd_mode(declared.fds.get(fd)),
                     _fd_mode(static.fds.get(fd)),
                     "n/a"))
    for gate in sorted(declared.gates | static.gates):
        rows.append((f"cgate:{gate}",
                     "yes" if gate in declared.gates else "-",
                     "call" if gate in static.gates else "-",
                     "n/a"))
    return rows


def format_compartment(result):
    """A report block for one compartment."""
    spec = result.spec
    flags = []
    if spec.exploit_facing:
        flags.append("exploit-facing")
    if spec.sid:
        flags.append(f"sid={spec.sid}")
    header = f"[{spec.app}/{spec.name}]"
    if flags:
        header += "  (" + ", ".join(flags) + ")"
    lines = [header]

    rows = _grant_rows(result)
    widths = [max([len(r[i]) for r in rows] + [8])
              for i in range(4)] if rows else [8, 8, 8, 8]
    head = ("grant", "declared", "static", "traced")
    widths = [max(w, len(h)) for w, h in zip(widths, head)]
    fmt = ("  {:<%d}  {:>%d}  {:>%d}  {:>%d}" % tuple(widths))
    lines.append(fmt.format(*head))
    for row in rows:
        lines.append(fmt.format(*row))
    if result.static.syscalls:
        lines.append("  syscalls: "
                     + " ".join(sorted(result.static.syscalls)))
    if result.inferred.unresolved:
        lines.append(f"  unresolved operands: "
                     f"{len(result.inferred.unresolved)}")
        for context, source in result.inferred.unresolved:
            lines.append(f"    [{context}] {source}")
    if not result.inferred.converged:
        lines.append("  WARNING: fixpoint did not converge")

    if result.findings:
        for finding in result.findings:
            lines.append(f"  {finding.severity.upper():<7} "
                         f"{finding.kind:<18} {finding.subject}: "
                         f"{finding.detail}")
    else:
        lines.append("  findings: none")
    return "\n".join(lines)


def format_report(results, *, title="least-privilege lint"):
    """The full report over many compartments."""
    lines = [f"== {title} ==", ""]
    for result in results:
        lines.append(format_compartment(result))
        lines.append("")
    errors = sum(len(r.errors) for r in results)
    warnings = sum(len(r.warnings) for r in results)
    lines.append(f"{len(results)} compartments analyzed: "
                 f"{errors} errors, {warnings} warnings")
    return "\n".join(lines)


# -- machine-readable output (``repro lint --json`` / ``repro verify``) -----

def _view_json(view):
    if view is None:
        return None
    return {"mem": dict(view.mem),
            "fds": {str(fd): _fd_mode(bits)
                    for fd, bits in sorted(view.fds.items())},
            "gates": sorted(view.gates),
            "syscalls": sorted(view.syscalls)}


def compartment_json(result):
    """One lint result as a JSON-serialisable dict."""
    spec = result.spec
    return {
        "app": spec.app,
        "compartment": spec.name,
        "exploit_facing": spec.exploit_facing,
        "sid": spec.sid,
        "declared": _view_json(result.declared),
        "static": _view_json(result.static),
        "traced": _view_json(result.traced),
        "converged": result.inferred.converged,
        "unresolved": [{"context": context, "source": source}
                       for context, source
                       in result.inferred.unresolved],
        "findings": [{"severity": f.severity, "kind": f.kind,
                      "subject": f.subject, "detail": f.detail}
                     for f in result.findings],
    }


def results_json(results):
    """The full lint report as a JSON-serialisable dict.

    The same shape feeds ``repro lint --json`` and the verification
    pass: ``compartments`` carries the three-way views per compartment,
    the summary counts mirror the text report's last line.
    """
    return {
        "compartments": [compartment_json(r) for r in results],
        "errors": sum(len(r.errors) for r in results),
        "warnings": sum(len(r.warnings) for r in results),
        "unresolved": sum(len(r.inferred.unresolved)
                          for r in results),
    }


def verification_json(reports):
    """Verification outcomes as a JSON-serialisable dict."""
    entries = []
    for report in reports:
        spec = report.spec
        entries.append({
            "app": spec.app,
            "compartment": spec.name,
            "verified": report.ok,
            "reasons": list(report.reasons),
            "unresolved": len(report.inferred.unresolved),
            "static": _view_json(report.static),
        })
    return {
        "compartments": entries,
        "verified": sum(1 for r in reports if r.ok),
        "rejected": sum(1 for r in reports if not r.ok),
    }
