"""Interprocedural least-privilege analysis (static + three-way lint).

The package has four layers:

* :mod:`repro.analysis.callgraph` — a cycle-safe abstract interpreter
  over the application source (fixpoint iteration, finite value sets);
* :mod:`repro.analysis.infer` — the Wedge kernel model on top of it,
  turning kernel call sites into an :class:`InferredPolicy` (memory
  tags, file descriptors, callgates, syscalls);
* :mod:`repro.analysis.lint` — the three-way diff of declared vs
  static vs traced policies, producing typed findings;
* :mod:`repro.analysis.targets` — the shipped applications as lintable
  targets (``python -m repro lint``);
* :mod:`repro.analysis.verify` — the proof-carrying fast path: prove
  static ⊆ granted with zero unresolved operands and compile the result
  into signed policy certificates (``python -m repro verify``).
"""

from repro.analysis.callgraph import CallGraphAnalysis
from repro.analysis.infer import GateRef, InferredPolicy, infer_policy
from repro.analysis.lint import (
    SEVERITY,
    CompartmentResult,
    CompartmentSpec,
    Finding,
    PolicyView,
    declared_view,
    gate_compartment_specs,
    gate_refs_of,
    lint_compartment,
    restart_widening_findings,
    static_view,
    tag_label,
    traced_view,
)
from repro.analysis.report import format_compartment, format_report
from repro.analysis.targets import (
    APP_NAMES,
    TARGETS,
    lint_app,
    lint_shipped,
    specs_of,
)
from repro.analysis.verify import (
    CertificateTemplate,
    PolicyCertificate,
    VerificationReport,
    certify_main,
    certify_monolithic_httpd,
    certify_server,
    verify_app,
    verify_policy,
)

__all__ = [
    "APP_NAMES",
    "CallGraphAnalysis",
    "CertificateTemplate",
    "CompartmentResult",
    "CompartmentSpec",
    "Finding",
    "GateRef",
    "InferredPolicy",
    "PolicyCertificate",
    "PolicyView",
    "SEVERITY",
    "TARGETS",
    "VerificationReport",
    "certify_main",
    "certify_monolithic_httpd",
    "certify_server",
    "declared_view",
    "format_compartment",
    "format_report",
    "gate_compartment_specs",
    "gate_refs_of",
    "infer_policy",
    "lint_app",
    "lint_compartment",
    "lint_shipped",
    "restart_widening_findings",
    "specs_of",
    "static_view",
    "tag_label",
    "traced_view",
    "verify_app",
    "verify_policy",
]
