"""Static policy inference over the call graph.

:func:`infer_policy` runs :class:`~repro.analysis.callgraph.CallGraphAnalysis`
over one compartment's body functions and collects the privileges any
path could exercise, in all four dimensions of a ``SecurityContext``:

* **memory** — every ``kernel.mem_read``/``mem_write``/``smalloc``/
  ``sfree``/``alloc_buf`` and every ``Buffer.read``/``write`` whose
  target resolves to tagged memory becomes a tag grant (``r`` joins to
  ``rw``);
* **file descriptors** — ``send``/``write`` demand ``FD_WRITE``,
  ``recv``/``recv_exact``/``read``/``accept`` demand ``FD_READ`` on the
  descriptor they name.  Descriptors the compartment opens *itself*
  (``open``/``pipe``/``listen``/``connect``) are marked and need no
  declared grant;
* **callgates** — ``kernel.cgate`` targets resolve through the
  :class:`GateRef` values handed out for ``kernel.current().gates`` and
  ``kernel.gate_record``;
* **syscalls** — every syscall-gated kernel entry point reached is
  recorded, to be checked against the compartment's SELinux allow-set.

Anything a grant-carrying operation targets that the analysis cannot
resolve lands in ``unresolved`` — the module keeps crowbar/static.py's
contract that an unsound "static" tool would be worse than none.
"""

from __future__ import annotations

import ast
import functools
import inspect

from repro.analysis.callgraph import (AbstractInstance, CallGraphAnalysis,
                                      ValueSet, _CallSite)
from repro.core.errors import WedgeError
from repro.core.kernel import Buffer, Kernel
from repro.core.policy import FD_READ, FD_WRITE
from repro.core.tags import Tag
from repro.resilience.retry import call_with_retry


class _Marker:
    __slots__ = ("label",)

    def __init__(self, label):
        self.label = label

    def __repr__(self):
        return f"<{self.label}>"


#: Result of ``kernel.malloc``/``stack_alloc``/untagged ``alloc_buf``:
#: private memory that needs no grant.
PRIVATE_ALLOC = _Marker("private-alloc")
#: Result of ``open``/``pipe``/``listen``/``connect``/``accept``: a
#: descriptor the compartment created itself, not a granted one.
OPENED_FD = _Marker("opened-fd")


class BoundCall:
    """``functools.partial`` modelled abstractly: target + frozen args.

    ``functools.partial`` is a class in a module the analysis never
    follows, so without this model a wrapped call site would evaluate to
    an opaque value and the wrapped operation — often a kernel method or
    a callgate invocation hidden behind a resilience wrapper — would
    silently vanish from the inferred policy.  One ``BoundCall`` exists
    per ``partial(...)`` call expression; its value sets grow
    monotonically across fixpoint rounds.
    """

    __slots__ = ("targets", "args", "kwargs")

    def __init__(self):
        self.targets = ValueSet()
        self.args = []      # per-position ValueSets, left to right
        self.kwargs = {}    # keyword -> ValueSet

    def __repr__(self):
        return f"<BoundCall {list(self.targets)!r}>"


class GateRef:
    """Symbolic handle for one callgate grant (entry + gate context)."""

    __slots__ = ("entry", "gate_sc", "trusted", "gate_id", "recycled")

    def __init__(self, entry, gate_sc=None, trusted=None, gate_id=None,
                 recycled=False):
        self.entry = entry
        self.gate_sc = gate_sc
        self.trusted = trusted
        self.gate_id = gate_id
        self.recycled = recycled

    @property
    def name(self):
        return getattr(self.entry, "__name__", f"gate{self.gate_id}")

    def __repr__(self):
        return f"<GateRef {self.name}>"


class InferredPolicy:
    """The statically required privilege set of one compartment."""

    def __init__(self):
        self.mem = {}          # tag id -> "r" | "rw"
        self.mem_names = {}    # tag id -> tag name (when known)
        self.fds = {}          # fd -> FD_* bits
        self.gates = set()     # callgate entry names
        self.syscalls = set()
        self.unresolved = []   # (context, source expression)
        self.visited = []      # qualnames walked
        self.rounds = 0
        self.converged = True

    def add_mem(self, tag_id, mode, name=None):
        previous = self.mem.get(tag_id)
        self.mem[tag_id] = "rw" if "rw" in (previous, mode) else mode
        if name:
            self.mem_names.setdefault(tag_id, name)

    def add_fd(self, fd, bits):
        self.fds[fd] = self.fds.get(fd, 0) | bits

    def __repr__(self):
        return (f"<InferredPolicy mem={self.mem} fds={self.fds} "
                f"gates={sorted(self.gates)} "
                f"unresolved={len(self.unresolved)}>")


#: kernel method -> (syscall name or None, handler key)
_MEM_MODES = {"mem_read": "r", "mem_write": "rw"}
_FD_OPS = {"send": ("send", FD_WRITE), "write": ("write", FD_WRITE),
           "recv": ("recv", FD_READ), "recv_exact": ("recv", FD_READ),
           "read": ("read", FD_READ), "accept": ("accept", FD_READ),
           "shutdown": ("shutdown", FD_WRITE),
           "disk_read": ("disk_read", FD_READ),
           "disk_write": ("disk_write", FD_WRITE),
           "disk_fsync": ("disk_fsync", FD_WRITE)}
_FD_MAKERS = {"open": "open", "listen": "listen", "connect": "connect",
              "disk_open": "disk_open"}
_SYSCALL_ONLY = {"close": "close", "tag_new": "tag_new",
                 "tag_delete": "tag_delete",
                 "sthread_create": "sthread_create", "fork": "fork",
                 "pthread_create": "pthread_create", "setuid": "setuid",
                 "chroot": "chroot"}

#: method names that imply a privileged operation: a call to one of
#: these on an *unresolved* receiver is reported rather than dropped
_WATCHLIST = frozenset(["mem_read", "mem_write", "smalloc", "sfree",
                        "alloc_buf", "smalloc_on", "send", "recv",
                        "recv_exact", "cgate"])


class KernelModel:
    """Intrinsics: the abstract meaning of substrate operations.

    Intercepts calls whose receiver is the (real) :class:`Kernel`, a
    (real) :class:`Buffer`, a :class:`Tag` standing in for a buffer the
    analysed code would allocate, or a :class:`GateRef`, and records
    their privilege demands into an :class:`InferredPolicy`.
    """

    def __init__(self, kernel, policy, gates=()):
        self.kernel = kernel
        self.policy = policy
        self.gate_refs = tuple(gates)
        sthread = AbstractInstance("sthread", label="current-sthread")
        sthread.attr_set("gates").add(tuple(self.gate_refs))
        self.sthread = sthread
        self._partials = {}   # id(call node) -> BoundCall

    # -- engine hooks ------------------------------------------------------

    def attribute(self, base, attr):
        if isinstance(base, Buffer) and attr == "addr":
            return ValueSet([base])   # offset math keeps the tag
        if isinstance(base, GateRef):
            if attr == "entry":
                return ValueSet([base.entry])
            if attr in ("name", "__name__"):
                return ValueSet([base.name])
            if attr in ("id", "gate_id"):
                return ValueSet([base])
            return ValueSet()
        return None

    def method_call(self, base, attr, call, walker):
        if inspect.ismodule(base):
            # attribute-style spellings of the intercepted callables
            # (``functools.partial(...)``) arrive here, not plain_call
            target = getattr(base, attr, None)
            if target is functools.partial or target is call_with_retry:
                return self.plain_call(target, call, walker)
            return None
        if isinstance(base, Kernel):
            return self._kernel_call(attr, call)
        if isinstance(base, Buffer):
            if attr == "read":
                self._record_mem(ValueSet([base]), "r",
                                 "Buffer.read", call.node)
                return ValueSet()
            if attr == "write":
                self._record_mem(ValueSet([base]), "rw",
                                 "Buffer.write", call.node)
                return ValueSet()
            return None
        if isinstance(base, Tag):
            # a Tag models a buffer allocated inside it at runtime
            if attr == "read":
                self.policy.add_mem(base.id, "r", base.name)
                return ValueSet()
            if attr == "write":
                self.policy.add_mem(base.id, "rw", base.name)
                return ValueSet()
            return None
        return None

    def plain_call(self, callee, call, walker):
        # the PR-5 resilience wrappers: resolve *through* them so a
        # retry- or partial-wrapped kernel operation still lands in the
        # policy instead of vanishing behind an opaque value
        if callee is call_with_retry:
            fns = call.arg(0, "fn")
            if fns:
                return self._dispatch_thunks(fns, call, walker)
            return None   # unresolved fn: fall through to source walk
        if callee is functools.partial:
            return self._partial_value(call, walker)
        if isinstance(callee, BoundCall):
            return self._bound_dispatch(callee, call, walker)
        if inspect.ismethod(callee):
            # a bound kernel/buffer method passed around as a value
            # (e.g. through functools.partial) and called plainly
            base = callee.__self__
            if isinstance(base, (Kernel, Buffer, Tag)):
                return self.method_call(base, callee.__name__, call,
                                        walker)
        return None

    def _dispatch_thunks(self, fns, call, walker):
        """Call every value in *fns* with no arguments."""
        inner = _CallSite(call.node, [], [], {}, ValueSet())
        out = ValueSet()
        for fn in fns:
            result = walker.dispatch_value(fn, inner)
            if result is not None:
                out.update(result)
        return out

    def _partial_value(self, call, walker):
        """``functools.partial(f, ...)`` — build/grow the BoundCall."""
        bound = self._partials.get(id(call.node))
        if bound is None:
            bound = self._partials[id(call.node)] = BoundCall()
        if call.args:
            walker.mark(bound.targets.update(call.args[0]))
            for i, values in enumerate(call.args[1:]):
                while len(bound.args) <= i:
                    bound.args.append(ValueSet())
                walker.mark(bound.args[i].update(values))
        for name, values in call.kwargs.items():
            slot = bound.kwargs.setdefault(name, ValueSet())
            walker.mark(slot.update(values))
        return ValueSet([bound])

    def _bound_dispatch(self, bound, call, walker):
        """Calling a BoundCall: frozen args first, then the site's."""
        merged = _CallSite(
            call.node,
            [vs.copy() for vs in bound.args] + list(call.args),
            list(call.star_args),
            {**{name: vs.copy() for name, vs in bound.kwargs.items()},
             **call.kwargs},
            call.kw_rest)
        out = ValueSet()
        for target in bound.targets:
            result = walker.dispatch_value(target, merged)
            if result is not None:
                out.update(result)
        return out

    def unknown_call(self, name, node, walker, *, had_target):
        if name in _WATCHLIST:
            self.policy.unresolved.append(
                (name, ast.unparse(node)))

    # -- kernel methods ----------------------------------------------------

    def _kernel_call(self, attr, call):
        policy = self.policy
        if attr in _MEM_MODES:
            self._record_mem(call.arg(0, "addr"), _MEM_MODES[attr],
                             attr, call.node)
            return ValueSet()
        if attr == "smalloc":
            tags = call.arg(1, "tag")
            self._record_mem(tags, "rw", attr, call.node)
            return tags.copy() if tags else ValueSet()
        if attr == "smalloc_on":
            self._record_mem(call.arg(0, "tag"), "rw", attr, call.node)
            return ValueSet()
        if attr == "sfree":
            self._record_mem(call.arg(0, "addr"), "rw", attr, call.node)
            return ValueSet()
        if attr == "alloc_buf":
            tags = call.arg(1, "tag")
            if tags:
                self._record_mem(tags, "rw", attr, call.node)
                return tags.copy()
            return ValueSet([PRIVATE_ALLOC])
        if attr in ("malloc", "stack_alloc"):
            return ValueSet([PRIVATE_ALLOC])
        if attr in _FD_OPS:
            syscall, bits = _FD_OPS[attr]
            policy.syscalls.add(syscall)
            self._record_fd(call.arg(0, "fd" if attr != "accept"
                                     else "listen_fd"),
                            bits, attr, call.node)
            if attr == "accept":
                return ValueSet([OPENED_FD])
            return ValueSet()
        if attr in _FD_MAKERS:
            policy.syscalls.add(_FD_MAKERS[attr])
            return ValueSet([OPENED_FD])
        if attr == "pipe":
            policy.syscalls.add("pipe")
            return ValueSet([(OPENED_FD, OPENED_FD)])
        if attr in _SYSCALL_ONLY:
            policy.syscalls.add(_SYSCALL_ONLY[attr])
            return ValueSet()
        if attr == "cgate":
            policy.syscalls.add("cgate")
            self._record_gate(call.arg(0, "gate_id"), call.node)
            return ValueSet()
        if attr == "current":
            return ValueSet([self.sthread])
        if attr == "gate_record":
            return self._gate_refs_from(call.arg(0, "gate_id"))
        # caller/promote/getuid/sthread_join/smalloc_off/...: opaque,
        # no privilege demanded from the calling compartment
        return ValueSet()

    # -- resolution --------------------------------------------------------

    def _tag_of(self, value):
        if isinstance(value, Tag):
            return value
        addr = None
        if isinstance(value, Buffer):
            addr = value.addr
        elif isinstance(value, int) and not isinstance(value, bool):
            addr = value
        if addr is None:
            return None
        try:
            segment, _ = self.kernel.space.find(addr)
        except WedgeError:
            return None
        if segment.tag_id is None:
            return PRIVATE_ALLOC   # untagged segment: no grant needed
        tag = self.kernel.tags.get(segment.tag_id)
        if tag is not None:
            return tag
        return Tag(segment.tag_id, segment, None,
                   name=segment.name)   # deleted tag: keep the identity

    def _record_mem(self, values, mode, context, node):
        if not values:
            self.policy.unresolved.append((context, ast.unparse(node)))
            return
        resolved = False
        for value in values:
            if value is PRIVATE_ALLOC:
                resolved = True
                continue
            if value is OPENED_FD:
                continue
            tag = self._tag_of(value)
            if tag is PRIVATE_ALLOC:
                resolved = True
            elif tag is not None:
                self.policy.add_mem(tag.id, mode, tag.name)
                resolved = True
        if not resolved:
            self.policy.unresolved.append((context, ast.unparse(node)))

    def _record_fd(self, values, bits, context, node):
        if not values:
            self.policy.unresolved.append((context, ast.unparse(node)))
            return
        resolved = False
        for value in values:
            if value is OPENED_FD:
                resolved = True
            elif isinstance(value, int) and not isinstance(value, bool):
                self.policy.add_fd(value, bits)
                resolved = True
        if not resolved:
            self.policy.unresolved.append((context, ast.unparse(node)))

    def _gate_refs_from(self, values):
        out = ValueSet()
        for value in values or ():
            if isinstance(value, GateRef):
                out.add(value)
            elif isinstance(value, int) and not isinstance(value, bool):
                try:
                    record = self.kernel.gate_record(value)
                except WedgeError:
                    continue
                out.add(GateRef(record.entry, gate_id=value,
                                recycled=record.recycled))
        return out

    def _record_gate(self, values, node):
        refs = self._gate_refs_from(values)
        if not refs:
            self.policy.unresolved.append(("cgate", ast.unparse(node)))
            return
        for ref in refs:
            self.policy.gates.add(ref.name)


def infer_policy(roots, kernel, *, gates=(), follow=None,
                 max_rounds=None):
    """Infer the static policy for a compartment.

    *roots* is a list of ``(function, bindings)`` pairs — the
    compartment's body functions with the concrete objects their free
    names are bound to at ``sthread_create`` time.  *gates* lists the
    :class:`GateRef` values ``kernel.current().gates`` should expose
    (i.e. what the declared context would hand the compartment).
    """
    policy = InferredPolicy()
    model = KernelModel(kernel, policy, gates=gates)
    kwargs = {}
    if max_rounds is not None:
        kwargs["max_rounds"] = max_rounds
    analysis = CallGraphAnalysis(intrinsics=model, follow=follow,
                                 **kwargs)
    for fn, bindings in roots:
        analysis.add_root(fn, bindings)
    analysis.run()
    # early fixpoint rounds report operands that later rounds resolve;
    # rebuild the unresolved list from one pass over the final state
    policy.unresolved = []
    analysis.walk_once()
    policy.visited = sorted({n.qualname for n in
                             analysis.nodes.values()})
    policy.rounds = analysis.rounds
    policy.converged = analysis.converged
    # deduplicate unresolved entries accumulated across rounds
    policy.unresolved = sorted(set(policy.unresolved))
    return policy
