"""Proof-carrying policies: prove static ⊆ granted, compile certificates.

:mod:`repro.analysis.infer` computes what a compartment body *could*
need; the runtime ``SecurityContext`` says what it was *granted*.  When
the static result is complete — the fixpoint converged with **zero**
unresolved operands — and every statically reachable demand is inside
the grant, each permission check the kernel would perform at run time is
provably redundant: the checked path can only ever answer yes.

:func:`verify_policy` performs that proof for one
:class:`~repro.analysis.lint.CompartmentSpec` and compiles the result
into a :class:`CertificateTemplate`.  Registered with
``Kernel.enable_verified``, the template binds a signed
:class:`PolicyCertificate` to each matching compartment at spawn time;
the memory bus then serves certificate-covered accesses without
translation or permission resolution and the syscall gate skips the
SELinux lookup for certificate-allowed names (DESIGN.md §2, "Verified
bus mode").

Soundness leans on three anchors:

* the proof is over the analyzer's *superset* of any real execution, so
  a certified compartment can never perform an access the checked path
  would deny — behaviour stays byte-identical, only the accounting gets
  cheaper;
* certificates are HMAC-signed by a kernel-held secret and pinned to
  one sthread *incarnation* (name plus page-table identity), so
  compartment code cannot forge one and a supervised restart can never
  reuse its predecessor's;
* every rights narrowing already funnels through
  ``PageTable._invalidate`` (the TLB-shootdown choke point), which
  revokes the certificate atomically before the narrowing lands.
"""

from __future__ import annotations

from repro.analysis.infer import infer_policy
from repro.analysis.lint import (_MODE_RANK, _label_for_tag,
                                 declared_view, gate_refs_of,
                                 static_view)
from repro.core.errors import PolicyError, SyscallDenied, WedgeError
from repro.core.memory import PROT_WRITE


class PolicyCertificate:
    """One compartment incarnation's proven privilege set, signed.

    ``mem`` maps concrete tag ids to the proven mode, ``fds`` records
    the descriptor rights proven at bind time, ``gates``/``syscalls``
    the callgate and syscall allow-sets.  ``signature`` is the kernel's
    HMAC over :meth:`payload`; ``Kernel.enter_verified`` rejects
    anything it did not sign itself.
    """

    __slots__ = ("sthread", "table_id", "mem", "fds", "gates",
                 "syscalls", "signature")

    def __init__(self, sthread, table_id, mem, fds, gates, syscalls,
                 signature=None):
        self.sthread = sthread
        self.table_id = table_id
        self.mem = dict(mem)            # tag id -> "r" | "rw"
        self.fds = dict(fds)            # fd -> FD_* bits
        self.gates = frozenset(gates)   # callgate entry names
        self.syscalls = frozenset(syscalls)
        self.signature = signature

    def payload(self):
        """Canonical bytes the kernel signs (order-independent)."""
        return repr((self.sthread, self.table_id,
                     sorted(self.mem.items()),
                     sorted(self.fds.items()),
                     sorted(self.gates),
                     sorted(self.syscalls))).encode()

    def __repr__(self):
        return (f"<PolicyCertificate {self.sthread!r} mem={self.mem} "
                f"syscalls={sorted(self.syscalls)}>")


class CertificateTemplate:
    """A verified policy awaiting concrete compartments.

    Verification proves the *shape* by tag label (per-connection tags
    get fresh names: ``session0``, ``session1``...); binding resolves
    the shape against one live sthread's granted context and re-checks
    every demand, so a template never widens what the grant already
    said.  A failed bind is not an error — the compartment simply runs
    on the checked path (``rejects`` counts them for observability).
    """

    __slots__ = ("compartment", "prefix", "mem_labels", "fds", "gates",
                 "syscalls", "binds", "rejects")

    def __init__(self, compartment, prefix, mem_labels, fds, gates,
                 syscalls):
        self.compartment = compartment
        self.prefix = prefix
        self.mem_labels = dict(mem_labels)   # tag label -> "r" | "rw"
        self.fds = dict(fds)
        self.gates = frozenset(gates)
        self.syscalls = frozenset(syscalls)
        self.binds = 0
        self.rejects = 0

    def __repr__(self):
        return (f"<CertificateTemplate {self.compartment!r} "
                f"prefix={self.prefix!r} binds={self.binds}>")

    def matches(self, st):
        """Name-prefix match; also covers ``~r<gen>`` restart names."""
        return st.name.startswith(self.prefix)

    def bind(self, st, kernel):
        """Prove this template against *st*'s live grant and certify.

        Returns the installed :class:`PolicyCertificate`, or ``None``
        when any demand is no longer inside the grant.
        """
        cert = self._prove(st, kernel)
        if cert is not None:
            cert.signature = kernel.sign_policy(cert.payload())
            try:
                kernel.enter_verified(cert, st)
            except WedgeError:
                cert = None
        if cert is None:
            self.rejects += 1
            return None
        self.binds += 1
        return cert

    def _prove(self, st, kernel):
        granted = {}
        for tag_id, prot in st.ctx.mem.items():
            label = _label_for_tag(kernel, tag_id)
            mode = "rw" if prot & PROT_WRITE else "r"
            granted.setdefault(label, []).append((tag_id, mode))
        mem = {}
        for label, mode in self.mem_labels.items():
            grants = granted.get(label)
            if not grants:
                return None
            for tag_id, granted_mode in grants:
                if _MODE_RANK[mode] > _MODE_RANK[granted_mode]:
                    return None
                mem[tag_id] = mode
        # descriptor numbers are per-connection artifacts (the analysis
        # ran against a placeholder fd), so demands resolve by rights
        # shape: each one must claim a distinct granted fd covering it
        fds = {}
        available = dict(st.ctx.fds)
        for fd, bits in sorted(self.fds.items()):
            if not bits & ~available.get(fd, 0):
                available.pop(fd)
                fds[fd] = bits
                continue
            hit = next((g for g, gbits in sorted(available.items())
                        if not bits & ~gbits), None)
            if hit is None:
                return None
            available.pop(hit)
            fds[hit] = bits
        names = set()
        for gate_id in st.gates:
            try:
                record = kernel.gate_record(gate_id)
            except WedgeError:
                continue
            names.add(record.name)
        if not self.gates <= names:
            return None
        # check against the *live* SID, not the spec's: an sthread built
        # with sid=None inherits its parent's domain
        for syscall in self.syscalls:
            try:
                kernel.selinux.check_syscall(st.sel_sid, syscall)
            except SyscallDenied:
                return None
        return PolicyCertificate(st.name, id(st.table), mem, fds,
                                 self.gates, self.syscalls)


class VerificationReport:
    """The outcome of one compartment's proof attempt."""

    __slots__ = ("spec", "ok", "reasons", "static", "inferred",
                 "template")

    def __init__(self, spec, ok, reasons, static, inferred, template):
        self.spec = spec
        self.ok = ok
        self.reasons = reasons
        self.static = static
        self.inferred = inferred
        self.template = template   # None unless the proof succeeded

    def __repr__(self):
        state = "ok" if self.ok else f"{len(self.reasons)} reasons"
        return (f"<VerificationReport {self.spec.app}/"
                f"{self.spec.name}: {state}>")


def verify_policy(spec, *, inferred=None):
    """Prove static ⊆ granted for one compartment spec.

    The proof demands completeness first — a converged fixpoint with
    zero unresolved operands — because an access the analyzer could not
    resolve is an access the certificate would silently exempt from
    checking.  Every failure is recorded as a human-readable reason;
    only a clean proof yields a :class:`CertificateTemplate`.
    """
    kernel = spec.kernel
    if inferred is None:
        inferred = infer_policy(
            spec.roots, kernel,
            gates=gate_refs_of(spec.declared_sc, kernel),
            follow=spec.follow)
    declared = declared_view(spec.declared_sc, kernel)
    static = static_view(inferred, kernel)
    reasons = []
    if not inferred.converged:
        reasons.append("fixpoint did not converge")
    for context, source in inferred.unresolved:
        reasons.append(f"unresolved operand [{context}] {source}")
    for label, mode in sorted(static.mem.items()):
        granted_mode = declared.mem.get(label)
        if _MODE_RANK[mode] > _MODE_RANK[granted_mode]:
            reasons.append(f"mem:{label} needs {mode}, granted "
                           f"{granted_mode or 'nothing'}")
    for fd, bits in sorted(static.fds.items()):
        if bits & ~declared.fds.get(fd, 0):
            reasons.append(f"fd:{fd} needs more than granted")
    for gate in sorted(static.gates - declared.gates):
        reasons.append(f"cgate:{gate} called but not granted")
    if spec.sid is not None:
        for syscall in sorted(static.syscalls):
            try:
                kernel.selinux.check_syscall(spec.sid, syscall)
            except SyscallDenied:
                reasons.append(f"syscall:{syscall} denied by domain "
                               f"{spec.sid}")
    template = None
    if not reasons:
        template = CertificateTemplate(
            f"{spec.app}/{spec.name}", spec.sthread_prefix,
            static.mem, static.fds, static.gates, static.syscalls)
    return VerificationReport(spec, not reasons, reasons, static,
                              inferred, template)


def verify_app(name):
    """Prove every compartment of one shipped app.

    Returns ``(server, reports)``: the freshly built (unstarted) server
    and one :class:`VerificationReport` per compartment.
    """
    from repro.analysis.targets import TARGETS
    target = TARGETS[name]
    server = target.make()
    return server, [verify_policy(spec)
                    for spec in target.specs(server)]


def certify_server(server):
    """Verify a live partitioned server and arm its kernel.

    Call before ``server.start()`` so long-lived compartments spawn
    certified; per-connection compartments certify as they appear.
    Only fully proven compartments contribute templates — the rest run
    on the checked path, unchanged.  Returns the reports.
    """
    from repro.analysis.targets import specs_of
    reports = [verify_policy(spec) for spec in specs_of(server)]
    server.kernel.enable_verified(
        [report.template for report in reports
         if report.template is not None])
    return reports


def certify_main(kernel, roots, *, gates=(), follow=None):
    """Prove *roots* as the bootstrap compartment and certify ``main``.

    The monolithic servers run everything in ``main``, which holds
    every tag — the subset half of the proof is easy; completeness
    (zero unresolved operands) is the work.  Call *after* the server
    has opened its listener so the descriptor state the analyzer
    consults is live.  Raises :class:`~repro.core.errors.PolicyError`
    when the proof fails; returns the installed certificate.
    """
    main = kernel.main
    inferred = infer_policy(roots, kernel, gates=gates, follow=follow)
    reasons = []
    if not inferred.converged:
        reasons.append("fixpoint did not converge")
    for context, source in inferred.unresolved:
        reasons.append(f"unresolved operand [{context}] {source}")
    mem = {}
    for tag_id, mode in sorted(inferred.mem.items()):
        prot = main.ctx.mem.get(tag_id)
        granted = None if prot is None else \
            ("rw" if prot & PROT_WRITE else "r")
        if _MODE_RANK[mode] > _MODE_RANK[granted]:
            name = inferred.mem_names.get(tag_id) or f"tag{tag_id}"
            reasons.append(f"mem:{name} needs {mode}, granted "
                           f"{granted or 'nothing'}")
        else:
            mem[tag_id] = mode
    for syscall in sorted(inferred.syscalls):
        try:
            kernel.selinux.check_syscall(main.sel_sid, syscall)
        except SyscallDenied:
            reasons.append(f"syscall:{syscall} denied by domain "
                           f"{main.sel_sid}")
    if reasons:
        raise PolicyError("cannot certify main: " + "; ".join(reasons))
    cert = PolicyCertificate(main.name, id(main.table), mem,
                             inferred.fds, inferred.gates,
                             inferred.syscalls)
    cert.signature = kernel.sign_policy(cert.payload())
    kernel.enter_verified(cert, main)
    return cert


def certify_monolithic_httpd(server):
    """Certify a *started* monolithic httpd's accept loop."""
    from repro.apps.httpd.common import HttpdBase
    return certify_main(server.kernel,
                        [(HttpdBase._serve_cycle, {"self": server})])
