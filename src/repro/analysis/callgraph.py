"""Interprocedural call-graph construction with cycle-safe fixpoint.

This replaces the depth-2 descent of :mod:`repro.crowbar.static` with a
real (if deliberately small) abstract interpreter:

* Every reachable function becomes a :class:`FunctionNode` holding a
  flow-insensitive abstract environment (``name -> ValueSet``) and an
  abstract return value.  Call sites join argument values into the
  callee's environment and read the callee's current return value.
* The whole graph is iterated to a **fixpoint**: nodes are re-walked
  until no environment, attribute, or return set changes.  Recursion is
  therefore safe — a cycle simply stops producing new facts.  The value
  universe (constants from the program text, objects reachable from the
  root bindings, one abstract instance per constructor call site) is
  finite, so termination is guaranteed; a round cap backstops bugs.
* Values are over-approximated as *sets of possibilities*.  Concrete
  Python objects from the analysis bindings (a real ``Kernel``, ``Tag``,
  ``Buffer``, a server instance...) flow through directly; objects the
  analysed code would construct at runtime are modelled abstractly
  (:class:`AbstractInstance`, :class:`AbstractMap`, :class:`Closure`).

What the engine does *not* do by itself is assign meaning to kernel
operations — that is the job of an *intrinsics* object (see
:class:`repro.analysis.infer.KernelModel`), which intercepts method
calls on chosen receivers (the kernel, buffers) and records grants.
The split keeps the fixpoint machinery policy-agnostic.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap

#: Modules whose functions the analysis walks into.  The substrate
#: (``repro.core``) is the TCB and is modelled by intrinsics instead;
#: exploit payloads (``repro.attacks``) must never contribute grants to
#: a policy; crowbar/analysis are the tools themselves.
FOLLOW_PREFIX = "repro."
NO_FOLLOW_PREFIXES = ("repro.core", "repro.crowbar", "repro.attacks",
                      "repro.analysis")

#: Hard caps: fixpoint rounds and per-ValueSet width.
MAX_ROUNDS = 80
MAX_WIDTH = 64


def default_follow(fn):
    """Should the analysis descend into *fn*'s body?"""
    module = getattr(fn, "__module__", None) or ""
    if not module.startswith(FOLLOW_PREFIX):
        return False
    return not module.startswith(NO_FOLLOW_PREFIXES)


# ---------------------------------------------------------------------------
# the value domain
# ---------------------------------------------------------------------------

_SCALARS = (int, float, bool, str, bytes, type(None))


def _value_key(value):
    """Dedup key: scalars by equality, everything else by identity."""
    if isinstance(value, _SCALARS):
        return ("scalar", type(value).__name__, value)
    return ("object", id(value))


class ValueSet:
    """A finite over-approximation of an expression's possible values.

    The empty set means *unknown* — no information, not "no value".
    """

    __slots__ = ("_items", "widened")

    def __init__(self, values=()):
        self._items = {}
        self.widened = False
        for value in values:
            self.add(value)

    def add(self, value):
        """Add one value; returns True if the set grew."""
        if len(self._items) >= MAX_WIDTH:
            self.widened = True
            return False
        key = _value_key(value)
        if key in self._items:
            return False
        self._items[key] = value
        return True

    def update(self, other):
        changed = False
        for value in other:
            if self.add(value):
                changed = True
        return changed

    def copy(self):
        out = ValueSet()
        out._items = dict(self._items)
        return out

    def __iter__(self):
        return iter(list(self._items.values()))

    def __len__(self):
        return len(self._items)

    def __bool__(self):
        return bool(self._items)

    def __repr__(self):
        return f"<ValueSet {list(self._items.values())!r}>"


class AbstractInstance:
    """One abstract object per constructor call site.

    ``cls`` may be a real class (method lookup descends into it) or a
    plain label string for synthesised objects (e.g. the sthread the
    intrinsics hand out for ``kernel.current()``).
    """

    __slots__ = ("cls", "label", "attrs")

    def __init__(self, cls, label=""):
        self.cls = cls if isinstance(cls, type) else None
        self.label = label or getattr(cls, "__name__", str(cls))
        self.attrs = {}

    def attr_set(self, name):
        vs = self.attrs.get(name)
        if vs is None:
            vs = self.attrs[name] = ValueSet()
        return vs

    def __repr__(self):
        return f"<AbstractInstance {self.label}>"


class AbstractMap:
    """An abstract dict.  Constant keys keep per-key value sets; other
    keys collapse into ``rest``.

    One domain-specific refinement keeps the apps' gate-table idiom
    precise: in ``mapping[record.entry.__name__] = gate_id`` both the
    key set and the value set range over *all* granted gates, which
    would smear every gate under every name.  When a string key is
    stored together with gate references (values exposing a ``name``),
    only the reference whose name matches the key is kept.
    """

    __slots__ = ("label", "keyed", "rest", "keys")

    def __init__(self, label=""):
        self.label = label
        self.keyed = {}       # constant key -> ValueSet
        self.rest = ValueSet()
        self.keys = ValueSet()

    def store(self, key_values, values):
        changed = False
        const_keys = [k for k in key_values if isinstance(k, _SCALARS)]
        if self.keys.update(key_values):
            changed = True
        if not const_keys:
            return self.rest.update(values) or changed
        for key in const_keys:
            slot = self.keyed.get(key)
            if slot is None:
                slot = self.keyed[key] = ValueSet()
            for value in values:
                name = getattr(value, "name", None)
                if (isinstance(key, str) and isinstance(name, str)
                        and name != key
                        and any(getattr(v, "name", None) == key
                                for v in values)):
                    continue   # the correlated reference exists; skip
                if slot.add(value):
                    changed = True
        return changed

    def load(self, key_values):
        const_keys = [k for k in key_values if isinstance(k, _SCALARS)]
        out = ValueSet()
        if const_keys and all(k in self.keyed for k in const_keys):
            for key in const_keys:
                out.update(self.keyed[key])
        else:
            for slot in self.keyed.values():
                out.update(slot)
        out.update(self.rest)
        return out

    def all_values(self):
        out = ValueSet()
        for slot in self.keyed.values():
            out.update(slot)
        out.update(self.rest)
        return out

    def __repr__(self):
        return f"<AbstractMap {self.label} keys={list(self.keyed)}>"


class AbstractSeq:
    """A tuple/list/set literal: a tuple of per-element value sets."""

    __slots__ = ("elts",)

    def __init__(self, elts):
        self.elts = tuple(elts)

    def join(self):
        out = ValueSet()
        for vs in self.elts:
            out.update(vs)
        return out

    def __repr__(self):
        return f"<AbstractSeq n={len(self.elts)}>"


class Closure:
    """A nested ``def`` or ``lambda``: body plus the defining scope."""

    __slots__ = ("node", "outer", "qualname")

    def __init__(self, node, outer, qualname):
        self.node = node          # ast.FunctionDef / ast.Lambda
        self.outer = outer        # defining FunctionNode
        self.qualname = qualname

    def __repr__(self):
        return f"<Closure {self.qualname}>"


class FunctionNode:
    """One function in the call graph, with its joined environment."""

    __slots__ = ("key", "qualname", "params", "vararg", "kwarg",
                 "body", "globals", "defaults", "env", "ret", "closure")

    def __init__(self, key, qualname, args, body, globals_,
                 closure=None):
        self.key = key
        self.qualname = qualname
        self.params = ([a.arg for a in args.posonlyargs]
                       + [a.arg for a in args.args]
                       + [a.arg for a in args.kwonlyargs])
        self.vararg = args.vararg.arg if args.vararg else None
        self.kwarg = args.kwarg.arg if args.kwarg else None
        self.defaults = args.defaults
        self.body = body
        self.globals = globals_
        self.env = {}
        self.ret = ValueSet()
        self.closure = closure    # defining FunctionNode, for Closures

    def env_set(self, name):
        vs = self.env.get(name)
        if vs is None:
            vs = self.env[name] = ValueSet()
        return vs

    def __repr__(self):
        return f"<FunctionNode {self.qualname}>"


# ---------------------------------------------------------------------------
# the analysis driver
# ---------------------------------------------------------------------------

def _parse_function(fn):
    source = textwrap.dedent(inspect.getsource(fn))
    tree = ast.parse(source)
    fdef = tree.body[0]
    if not isinstance(fdef, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"not a function definition: {fn!r}")
    return fdef


class CallGraphAnalysis:
    """Builds the call graph and iterates all nodes to a fixpoint."""

    def __init__(self, intrinsics=None, follow=None,
                 max_rounds=MAX_ROUNDS):
        self.intrinsics = intrinsics
        self.follow = follow or default_follow
        self.max_rounds = max_rounds
        self.nodes = {}            # key -> FunctionNode
        self.edges = set()         # (caller qualname, callee qualname)
        self.rounds = 0
        self.converged = True
        self.changed = False
        self._instances = {}       # id(ast.Call) -> (node, instance)
        self._maps = {}            # id(ast node) -> (node, AbstractMap)
        self._closures = {}        # id(ast def) -> (node, Closure)
        self._unparsable = []

    # -- node management --------------------------------------------------

    def node_for_function(self, fn):
        key = fn.__code__
        node = self.nodes.get(key)
        if node is None:
            try:
                fdef = _parse_function(fn)
            except (OSError, TypeError, SyntaxError):
                self._unparsable.append(getattr(fn, "__qualname__",
                                                repr(fn)))
                return None
            node = FunctionNode(key, fn.__qualname__, fdef.args,
                                fdef.body, fn.__globals__)
            if fn.__closure__:
                # a real closure: its free variables are concrete
                # runtime values — seed the environment with them
                for name, cell in zip(fn.__code__.co_freevars,
                                      fn.__closure__):
                    try:
                        node.env_set(name).add(cell.cell_contents)
                    except ValueError:
                        pass
            self.nodes[key] = node
            self.changed = True
        return node

    def node_for_closure(self, clo):
        key = id(clo.node)
        node = self.nodes.get(key)
        if node is None:
            body = (clo.node.body if isinstance(clo.node.body, list)
                    else [ast.Return(value=clo.node.body)])
            node = FunctionNode(key, clo.qualname, clo.node.args, body,
                                clo.outer.globals, closure=clo.outer)
            self.nodes[key] = node
            self.changed = True
        return node

    def instance_for(self, call_node, cls, walker_node):
        entry = self._instances.get(id(call_node))
        if entry is None:
            inst = AbstractInstance(cls)
            self._instances[id(call_node)] = (call_node, inst)
            return inst
        return entry[1]

    def map_for(self, ast_node, label=""):
        entry = self._maps.get(id(ast_node))
        if entry is None:
            amap = AbstractMap(label)
            self._maps[id(ast_node)] = (ast_node, amap)
            return amap
        return entry[1]

    def closure_for(self, def_node, outer, qualname):
        entry = self._closures.get(id(def_node))
        if entry is None:
            clo = Closure(def_node, outer, qualname)
            self._closures[id(def_node)] = (def_node, clo)
            return clo
        return entry[1]

    # -- entry points ------------------------------------------------------

    def add_root(self, fn, bindings):
        """Register *fn* as a root with its name bindings."""
        fn = getattr(fn, "__func__", fn)
        node = self.node_for_function(fn)
        if node is None:
            raise TypeError(f"cannot analyse {fn!r}: no source")
        for name, value in bindings.items():
            node.env_set(name).add(value)
        return node

    def run(self):
        """Iterate every node until nothing changes (the fixpoint)."""
        for _ in range(self.max_rounds):
            self.rounds += 1
            self.changed = False
            for node in list(self.nodes.values()):
                _Walker(self, node).walk()
            if not self.changed:
                return self
        self.converged = False
        return self

    def walk_once(self):
        """One extra pass over every node, without growing the graph.

        Used after convergence as a *reporting* pass: intrinsics that
        record diagnostics (e.g. unresolved operands) can reset their
        lists first, so entries reflect the final environments rather
        than the not-yet-propagated early rounds.
        """
        for node in list(self.nodes.values()):
            _Walker(self, node).walk()
        return self

    def mark_changed(self, did_change):
        if did_change:
            self.changed = True
        return did_change


# ---------------------------------------------------------------------------
# the abstract walker (one pass over one function body)
# ---------------------------------------------------------------------------

_BUILTIN_PASSTHROUGH = frozenset(["iter", "list", "tuple", "set",
                                  "frozenset", "sorted", "reversed"])


class _Walker:
    """Flow-insensitive abstract execution of one FunctionNode body."""

    def __init__(self, analysis, node):
        self.analysis = analysis
        self.node = node

    def walk(self):
        if self.node.closure is not None:
            # a closure sees the defining scope's names (monotone join)
            for name, vs in self.node.closure.env.items():
                if name not in self.node.params:
                    self.mark(self.node.env_set(name).update(vs))
        self.exec_block(self.node.body)

    def mark(self, changed):
        return self.analysis.mark_changed(changed)

    # -- statements --------------------------------------------------------

    def exec_block(self, stmts):
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt):
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self.bind(target, value)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            self.bind(stmt.target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.mark(self.node.ret.update(self.eval(stmt.value)))
        elif isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.For):
            elements = self.elements_of(self.eval(stmt.iter))
            self.bind(stmt.target, elements)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                ctx = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, ctx)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.FunctionDef):
            clo = self.analysis.closure_for(
                stmt, self.node, f"{self.node.qualname}.{stmt.name}")
            self.mark(self.node.env_set(stmt.name).add(clo))
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
        elif isinstance(stmt, ast.Delete):
            pass
        # Pass/Break/Continue/Global/Nonlocal/Import*: no dataflow here

    # -- binding -----------------------------------------------------------

    def bind(self, target, values):
        if isinstance(target, ast.Name):
            self.mark(self.node.env_set(target.id).update(values))
        elif isinstance(target, (ast.Tuple, ast.List)):
            self.bind_unpack(target.elts, values)
        elif isinstance(target, ast.Attribute):
            for base in self.eval(target.value):
                if isinstance(base, AbstractInstance):
                    self.mark(base.attr_set(target.attr).update(values))
                # never mutate concrete objects
        elif isinstance(target, ast.Subscript):
            key = self.eval(target.slice)
            for base in self.eval(target.value):
                if isinstance(base, AbstractMap):
                    self.mark(base.store(key, values))
        elif isinstance(target, ast.Starred):
            self.bind(target.value, values)

    def bind_unpack(self, elt_targets, values):
        """Distribute tuple-unpacking over concrete tuples and seqs."""
        per_slot = [ValueSet() for _ in elt_targets]
        for value in values:
            if isinstance(value, (tuple, list)):
                if len(value) == len(elt_targets):
                    for i, item in enumerate(value):
                        per_slot[i].add(item)
                else:
                    for slot in per_slot:
                        slot.update(ValueSet(value))
            elif isinstance(value, AbstractSeq):
                if len(value.elts) == len(elt_targets):
                    for i, vs in enumerate(value.elts):
                        per_slot[i].update(vs)
                else:
                    joined = value.join()
                    for slot in per_slot:
                        slot.update(joined)
        for target, slot in zip(elt_targets, per_slot):
            if isinstance(target, ast.Starred):
                self.bind(target.value, slot)
            else:
                self.bind(target, slot)

    # -- expressions -------------------------------------------------------

    def eval(self, node):
        if node is None:
            return ValueSet()
        method = getattr(self, f"eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # unhandled expression kinds: evaluate children for effects
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return ValueSet()

    def eval_Constant(self, node):
        return ValueSet([node.value])

    def eval_Name(self, node):
        vs = self.node.env.get(node.id)
        if vs:
            return vs.copy()
        if node.id in self.node.globals:
            return ValueSet([self.node.globals[node.id]])
        if hasattr(builtins, node.id):
            return ValueSet([getattr(builtins, node.id)])
        return ValueSet()

    def eval_Attribute(self, node):
        out = ValueSet()
        for base in self.eval(node.value):
            out.update(self.resolve_attr(base, node.attr))
        return out

    def resolve_attr(self, base, attr):
        intr = self.analysis.intrinsics
        if intr is not None:
            hit = intr.attribute(base, attr)
            if hit is not None:
                return hit
        if isinstance(base, AbstractInstance):
            out = ValueSet()
            vs = base.attrs.get(attr)
            if vs:
                out.update(vs)
            if base.cls is not None:
                cls_attr = getattr(base.cls, attr, None)
                if cls_attr is not None and not callable(cls_attr) \
                        and not isinstance(cls_attr, property):
                    out.add(cls_attr)
            return out
        if isinstance(base, (AbstractMap, AbstractSeq, Closure)):
            return ValueSet()
        if isinstance(base, _SCALARS):
            return ValueSet()
        # concrete object / module / class: a plain data attribute or a
        # bound method is safe to materialise; properties are not run
        if isinstance(getattr(type(base), attr, None), property):
            return ValueSet()
        try:
            value = getattr(base, attr)
        except Exception:
            return ValueSet()
        return ValueSet([value])

    def eval_Subscript(self, node):
        keys = self.eval(node.slice)
        out = ValueSet()
        for base in self.eval(node.value):
            if isinstance(base, AbstractMap):
                out.update(base.load(keys))
            elif isinstance(base, dict):
                const = [k for k in keys
                         if isinstance(k, _SCALARS) and k in base]
                if const:
                    for key in const:
                        out.add(base[key])
                elif not keys:
                    for value in base.values():
                        out.add(value)
            elif isinstance(base, (tuple, list)):
                const = [k for k in keys if isinstance(k, int)
                         and not isinstance(k, bool)
                         and -len(base) <= k < len(base)]
                if const:
                    for key in const:
                        out.add(base[key])
                else:
                    out.update(ValueSet(base))
            elif isinstance(base, AbstractSeq):
                out.update(base.join())
        return out

    def eval_BinOp(self, node):
        # offset arithmetic: the left operand names the base object;
        # joining both sides would let small integer constants alias
        # into unrelated segments
        left = self.eval(node.left)
        if left:
            self.eval(node.right)
            return left
        return self.eval(node.right)

    def eval_BoolOp(self, node):
        out = ValueSet()
        for value in node.values:
            out.update(self.eval(value))
        return out

    def eval_IfExp(self, node):
        self.eval(node.test)
        out = self.eval(node.body)
        out.update(self.eval(node.orelse))
        return out

    def eval_Compare(self, node):
        self.eval(node.left)
        for comp in node.comparators:
            self.eval(comp)
        return ValueSet()

    def eval_UnaryOp(self, node):
        self.eval(node.operand)
        return ValueSet()

    def eval_Tuple(self, node):
        return ValueSet([AbstractSeq([self.eval(e) for e in node.elts])])

    eval_List = eval_Tuple
    eval_Set = eval_Tuple

    def eval_Dict(self, node):
        amap = self.analysis.map_for(node, "dict-literal")
        for key_node, value_node in zip(node.keys, node.values):
            values = self.eval(value_node)
            if key_node is None:       # {**other}
                for value in values:
                    if isinstance(value, AbstractMap):
                        self.mark(amap.rest.update(value.all_values()))
                    elif isinstance(value, dict):
                        self.mark(amap.rest.update(
                            ValueSet(value.values())))
                continue
            self.mark(amap.store(self.eval(key_node), values))
        return ValueSet([amap])

    def eval_Starred(self, node):
        return self.eval(node.value)

    def eval_Lambda(self, node):
        clo = self.analysis.closure_for(
            node, self.node, f"{self.node.qualname}.<lambda>")
        return ValueSet([clo])

    def eval_JoinedStr(self, node):
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                self.eval(value.value)
        return ValueSet()

    def eval_Await(self, node):
        return self.eval(node.value)

    def eval_NamedExpr(self, node):
        values = self.eval(node.value)
        self.bind(node.target, values)
        return values

    def _eval_comprehension(self, node, result_exprs):
        for gen in node.generators:
            elements = self.elements_of(self.eval(gen.iter))
            self.bind(gen.target, elements)
            for cond in gen.ifs:
                self.eval(cond)
        return [self.eval(e) for e in result_exprs]

    def eval_ListComp(self, node):
        (elt,) = self._eval_comprehension(node, [node.elt])
        return ValueSet([AbstractSeq([elt])])

    eval_SetComp = eval_ListComp
    eval_GeneratorExp = eval_ListComp

    def eval_DictComp(self, node):
        keys, values = self._eval_comprehension(node,
                                                [node.key, node.value])
        amap = self.analysis.map_for(node, "dict-comp")
        self.mark(amap.store(keys, values))
        return ValueSet([amap])

    # -- containers --------------------------------------------------------

    def elements_of(self, values):
        out = ValueSet()
        for value in values:
            if isinstance(value, (tuple, list, set, frozenset)):
                out.update(ValueSet(value))
            elif isinstance(value, dict):
                out.update(ValueSet(value.keys()))
            elif isinstance(value, AbstractSeq):
                out.update(value.join())
            elif isinstance(value, AbstractMap):
                out.update(value.keys)
        return out

    # -- calls -------------------------------------------------------------

    def eval_Call(self, node):
        args = [self.eval(a) for a in node.args
                if not isinstance(a, ast.Starred)]
        star_args = [self.eval(a.value) for a in node.args
                     if isinstance(a, ast.Starred)]
        kwargs = {}
        kw_rest = ValueSet()
        for kw in node.keywords:
            if kw.arg is None:          # **mapping
                for value in self.eval(kw.value):
                    if isinstance(value, AbstractMap):
                        kw_rest.update(value.all_values())
                    elif isinstance(value, dict):
                        for k, v in value.items():
                            kwargs.setdefault(k, ValueSet()).add(v)
            else:
                kwargs[kw.arg] = self.eval(kw.value)
        call = _CallSite(node, args, star_args, kwargs, kw_rest)

        out = ValueSet()
        handled = False
        if isinstance(node.func, ast.Attribute):
            bases = self.eval(node.func.value)
            attr = node.func.attr
            for base in bases:
                result = self.dispatch_method(base, attr, call)
                if result is not None:
                    out.update(result)
                    handled = True
            if not handled:
                self.unknown_call(attr, node, had_target=bool(bases))
        else:
            callees = self.eval(node.func)
            for callee in callees:
                result = self.dispatch_value(callee, call)
                if result is not None:
                    out.update(result)
                    handled = True
            if not handled:
                name = (node.func.id
                        if isinstance(node.func, ast.Name) else "?")
                self.unknown_call(name, node, had_target=bool(callees))
        return out

    def unknown_call(self, name, node, *, had_target):
        intr = self.analysis.intrinsics
        if intr is not None:
            intr.unknown_call(name, node, self, had_target=had_target)

    def dispatch_method(self, base, attr, call):
        """A ``base.attr(...)`` call; returns a ValueSet or None."""
        intr = self.analysis.intrinsics
        if intr is not None:
            hit = intr.method_call(base, attr, call, self)
            if hit is not None:
                return hit
        if isinstance(base, AbstractInstance):
            out = ValueSet()
            handled = False
            if base.cls is not None:
                target = getattr(base.cls, attr, None)
                target = getattr(target, "__func__", target)
                if inspect.isfunction(target):
                    out.update(self.call_function(
                        target, call, self_value=base))
                    handled = True
            stored = base.attrs.get(attr)
            if stored:
                for value in stored:
                    result = self.dispatch_value(value, call)
                    if result is not None:
                        out.update(result)
                        handled = True
            return out if handled else None
        if isinstance(base, (AbstractMap, AbstractSeq, Closure)):
            return self.dict_method(base, attr, call)
        if isinstance(base, dict):
            return self.dict_method(base, attr, call)
        if isinstance(base, _SCALARS) or base is None:
            return ValueSet()   # scalar methods: opaque but harmless
        # concrete object, class, or module
        owner = base if inspect.isclass(base) or inspect.ismodule(base) \
            else type(base)
        target = getattr(owner, attr, None)
        target = getattr(target, "__func__", target)
        if inspect.isfunction(target):
            if self.analysis.follow(target):
                self_value = None if inspect.isclass(base) \
                    or inspect.ismodule(base) else base
                if inspect.ismodule(base):
                    return self.call_function(target, call)
                return self.call_function(target, call,
                                          self_value=self_value)
            return ValueSet()   # outside the followed set: opaque
        if target is not None:
            return ValueSet()   # builtin / C-level method: opaque
        return None

    def dict_method(self, base, attr, call):
        if isinstance(base, dict):
            if attr == "get":
                keys = call.arg(0, "key") or ValueSet()
                out = ValueSet()
                hit = False
                for key in keys:
                    if isinstance(key, _SCALARS) and key in base:
                        out.add(base[key])
                        hit = True
                if not hit:
                    out.update(ValueSet(base.values()))
                    if call.arg(1, "default"):
                        out.update(call.arg(1, "default"))
                return out
            if attr in ("keys",):
                return ValueSet([tuple(base.keys())])
            if attr in ("values",):
                return ValueSet([tuple(base.values())])
            if attr in ("items",):
                return ValueSet([tuple(base.items())])
            if attr in ("pop", "setdefault"):
                return ValueSet(base.values())
            return ValueSet()
        if isinstance(base, AbstractMap):
            if attr in ("get", "pop"):
                keys = call.arg(0, "key") or ValueSet()
                out = base.load(keys) if keys else base.all_values()
                default = call.arg(1, "default")
                if default:
                    out.update(default)
                return out
            if attr == "setdefault":
                keys = call.arg(0, "key") or ValueSet()
                default = call.arg(1, "default") or ValueSet()
                self.mark(base.store(keys, default))
                return base.load(keys)
            if attr == "update":
                extra = call.arg(0, None) or ValueSet()
                for value in extra:
                    if isinstance(value, AbstractMap):
                        self.mark(base.rest.update(value.all_values()))
                    elif isinstance(value, dict):
                        self.mark(base.rest.update(
                            ValueSet(value.values())))
                return ValueSet()
            if attr == "values":
                return ValueSet([AbstractSeq([base.all_values()])])
            if attr == "items":
                pair = AbstractSeq([base.keys, base.all_values()])
                return ValueSet([AbstractSeq([ValueSet([pair])])])
            if attr == "keys":
                return ValueSet([AbstractSeq([base.keys.copy()])])
            return ValueSet()
        return ValueSet()

    def dispatch_value(self, callee, call):
        """A plain ``callee(...)``; returns a ValueSet or None."""
        intr = self.analysis.intrinsics
        if intr is not None:
            hit = intr.plain_call(callee, call, self)
            if hit is not None:
                return hit
        if inspect.ismethod(callee):
            fn = callee.__func__
            if self.analysis.follow(fn):
                return self.call_function(fn, call,
                                          self_value=callee.__self__)
            return ValueSet()
        if isinstance(callee, Closure):
            node = self.analysis.node_for_closure(callee)
            return self.enter(node, call)
        if inspect.isfunction(callee):
            if self.analysis.follow(callee):
                return self.call_function(callee, call)
            return ValueSet()
        if inspect.isclass(callee):
            if self.analysis.follow(callee):
                inst = self.analysis.instance_for(call.node, callee,
                                                  self.node)
                init = getattr(callee, "__init__", None)
                init = getattr(init, "__func__", init)
                if inspect.isfunction(init):
                    self.call_function(init, call, self_value=inst)
                return ValueSet([inst])
            return ValueSet()
        if callee is getattr(builtins, "next", None):
            return self.elements_of(call.arg(0, None) or ValueSet())
        if callee in (getattr(builtins, n, None)
                      for n in _BUILTIN_PASSTHROUGH):
            return (call.arg(0, None) or ValueSet()).copy()
        if callee is getattr(builtins, "dict", None):
            seed = call.arg(0, None) or ValueSet()
            amap = self.analysis.map_for(call.node, "dict()")
            for value in seed:
                if isinstance(value, dict):
                    for k, v in value.items():
                        self.mark(amap.store(ValueSet([k]),
                                             ValueSet([v])))
                elif isinstance(value, AbstractMap):
                    self.mark(amap.rest.update(value.all_values()))
                    self.mark(amap.keys.update(value.keys))
                    for k, slot in value.keyed.items():
                        self.mark(amap.store(ValueSet([k]), slot))
            for name, vs in call.kwargs.items():
                self.mark(amap.store(ValueSet([name]), vs))
            return ValueSet([amap])
        if callable(callee):
            return ValueSet()   # other builtins: opaque
        return None

    def call_function(self, fn, call, self_value=None):
        node = self.analysis.node_for_function(fn)
        if node is None:
            return ValueSet()
        return self.enter(node, call, self_value=self_value)

    def enter(self, callee, call, self_value=None):
        """Join the call's arguments into *callee* and use its ret."""
        self.analysis.edges.add((self.node.qualname, callee.qualname))
        params = list(callee.params)
        positional = list(call.args)
        if self_value is not None and params:
            self.mark(callee.env_set(params[0]).add(self_value))
            params = params[1:]
        for name, values in zip(params, positional):
            self.mark(callee.env_set(name).update(values))
        leftover = positional[len(params):]
        for name, values in call.kwargs.items():
            if name in params:
                self.mark(callee.env_set(name).update(values))
            elif callee.kwarg is not None:
                amap = self.analysis.map_for(callee.body[0]
                                             if callee.body else call.node,
                                             f"**{callee.kwarg}")
                self.mark(amap.store(ValueSet([name]), values))
                self.mark(callee.env_set(callee.kwarg).add(amap))
        if call.kw_rest and callee.kwarg is not None:
            amap = self.analysis.map_for(callee.body[0]
                                         if callee.body else call.node,
                                         f"**{callee.kwarg}")
            self.mark(amap.rest.update(call.kw_rest))
            self.mark(callee.env_set(callee.kwarg).add(amap))
        if callee.vararg is not None and (leftover or call.star_args):
            joined = ValueSet()
            for vs in leftover:
                joined.update(vs)
            for vs in call.star_args:
                joined.update(self.elements_of(vs))
            self.mark(callee.env_set(callee.vararg).add(
                AbstractSeq([joined])))
        # constant defaults for parameters no call site supplied
        n_def = len(callee.defaults)
        if n_def:
            for param, default in zip(callee.params[-n_def:],
                                      callee.defaults):
                if isinstance(default, ast.Constant) \
                        and param not in callee.env:
                    self.mark(callee.env_set(param).add(default.value))
        return callee.ret.copy()


class _CallSite:
    """Evaluated arguments of one call expression."""

    __slots__ = ("node", "args", "star_args", "kwargs", "kw_rest")

    def __init__(self, node, args, star_args, kwargs, kw_rest):
        self.node = node
        self.args = args
        self.star_args = star_args
        self.kwargs = kwargs
        self.kw_rest = kw_rest

    def arg(self, index, name):
        """The value set for positional *index* / keyword *name*."""
        if index is not None and index < len(self.args):
            return self.args[index]
        if name is not None and name in self.kwargs:
            return self.kwargs[name]
        return None
