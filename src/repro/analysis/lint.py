"""The three-way least-privilege lint: declared / static / traced.

For each compartment the linter lines up three policies:

* **declared** — the ``SecurityContext`` the application actually
  installs (what an exploit in the compartment gets);
* **static** — what :func:`repro.analysis.infer.infer_policy` says any
  code path could need (a superset of correct executions, §7's
  over-approximation warning);
* **traced** — what a Crowbar (cb-log) trace of an innocuous workload
  shows the compartment *using* (memory only: the trace records memory
  accesses, not fd or gate activity).

and emits typed findings:

``UNUSED_GRANT``
    declared privilege (memory tag, fd, or callgate) that is neither
    statically reachable nor dynamically used — pure attack surface.
``OVER_PRIV``
    declared mode exceeds every observed need (e.g. ``rw`` where both
    static and trace say ``r``).
``SENSITIVE_EXPOSURE``
    a tag from the sensitive set (e.g. the RSA private key) is
    declared for or statically reachable from an exploit-facing
    compartment — exactly the leak §7 warns static derivation invites.
``UNSOUND``
    the trace used a memory grant the static pass failed to require —
    the analyzer's unsoundness debt, which must be zero on shipped apps.
``MISSING_SYSCALL``
    a statically reachable syscall the compartment's SELinux domain
    denies — the run would fault on a legitimate path.
``RESTART_WIDENING``
    a *supervised* callgate's live security context holds grants wider
    than the baseline frozen at instantiation.  A supervised gate is
    rebuilt from its context on every restart, so widening it at run
    time means the next crash silently re-binds the compartment with
    more privilege than the partitioning declared.

Per-connection tags get fresh names each connection (``session0``,
``session1``...), so policies are compared by *label*: the tag name
with any trailing connection counter stripped.
"""

from __future__ import annotations

import re

from repro.analysis.infer import GateRef, infer_policy
from repro.core.errors import SyscallDenied, WedgeError
from repro.core.memory import PROT_WRITE
from repro.core.policy import FD_READ, FD_WRITE

SEVERITY = {"UNSOUND": "error", "SENSITIVE_EXPOSURE": "error",
            "MISSING_SYSCALL": "error", "RESTART_WIDENING": "error",
            "OVER_PRIV": "warning", "UNUSED_GRANT": "warning"}

_MODE_RANK = {None: 0, "r": 1, "rw": 2}


def tag_label(name):
    """Normalise a tag name: strip the per-connection counter suffix."""
    return re.sub(r"\d+$", "", name) or name


def _join_mode(a, b):
    return a if _MODE_RANK[a] >= _MODE_RANK[b] else b


def _fd_modes(bits):
    return {FD_READ & bits and "read" or None,
            FD_WRITE & bits and "write" or None} - {None}


class Finding:
    """One lint result."""

    __slots__ = ("kind", "compartment", "subject", "detail")

    def __init__(self, kind, compartment, subject, detail):
        self.kind = kind
        self.compartment = compartment
        self.subject = subject
        self.detail = detail

    @property
    def severity(self):
        return SEVERITY[self.kind]

    def __repr__(self):
        return (f"<{self.kind} [{self.severity}] {self.compartment}: "
                f"{self.subject} — {self.detail}>")


class PolicyView:
    """A policy normalised for comparison: labels, bits, names."""

    def __init__(self):
        self.mem = {}       # tag label -> "r" | "rw"
        self.fds = {}       # fd -> FD_* bits
        self.gates = set()  # gate entry names
        self.syscalls = set()
        self.unresolved = []

    def __repr__(self):
        return (f"<PolicyView mem={self.mem} fds={self.fds} "
                f"gates={sorted(self.gates)}>")


class CompartmentSpec:
    """Everything the linter needs to know about one compartment."""

    def __init__(self, name, app, kernel, declared_sc, roots, *,
                 sthread_prefix, exploit_facing=False,
                 sensitive_tags=(), sid=None, follow=None):
        self.name = name
        self.app = app
        self.kernel = kernel
        self.declared_sc = declared_sc
        self.roots = roots
        self.sthread_prefix = sthread_prefix
        self.exploit_facing = exploit_facing
        #: sensitive tag *labels* (normalised names)
        self.sensitive_tags = frozenset(sensitive_tags)
        self.sid = sid if sid is not None else declared_sc.sid
        self.follow = follow

    def __repr__(self):
        return f"<CompartmentSpec {self.app}/{self.name}>"


class CompartmentResult:
    """The three policies plus the findings for one compartment."""

    def __init__(self, spec, declared, static, traced, findings,
                 inferred):
        self.spec = spec
        self.declared = declared
        self.static = static
        self.traced = traced        # None when no trace was supplied
        self.findings = findings
        self.inferred = inferred    # the raw InferredPolicy

    @property
    def errors(self):
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self):
        return [f for f in self.findings if f.severity == "warning"]


# ---------------------------------------------------------------------------
# building the three views
# ---------------------------------------------------------------------------

def _label_for_tag(kernel, tag_id):
    tag = kernel.tags.get(tag_id)
    if tag is not None:
        return tag_label(tag.name)
    return f"tag{tag_id}"


def declared_view(sc, kernel):
    """Normalise a SecurityContext into a PolicyView."""
    view = PolicyView()
    for tag_id, prot in sc.mem.items():
        mode = "rw" if prot & PROT_WRITE else "r"
        label = _label_for_tag(kernel, tag_id)
        view.mem[label] = _join_mode(view.mem.get(label), mode)
    for fd, bits in sc.fds.items():
        view.fds[fd] = view.fds.get(fd, 0) | bits
    for ref in gate_refs_of(sc, kernel):
        view.gates.add(ref.name)
    return view


def static_view(policy, kernel):
    """Normalise an InferredPolicy into a PolicyView."""
    view = PolicyView()
    for tag_id, mode in policy.mem.items():
        name = policy.mem_names.get(tag_id) \
            or _label_for_tag(kernel, tag_id)
        label = tag_label(name)
        view.mem[label] = _join_mode(view.mem.get(label), mode)
    view.fds = dict(policy.fds)
    view.gates = set(policy.gates)
    view.syscalls = set(policy.syscalls)
    view.unresolved = list(policy.unresolved)
    return view


def traced_view(trace, sthread_prefix):
    """The memory grants a Crowbar trace shows a compartment using.

    Only accesses to tagged memory made *by* sthreads whose name starts
    with the prefix count; the item's recorded segment name (captured
    at access time, so deleted per-connection tags still resolve) gives
    the label.
    """
    view = PolicyView()
    for record in trace.accesses:
        if not record.sthread.startswith(sthread_prefix):
            continue
        if record.item.tag_id is None:
            continue
        label = tag_label(record.item.segment_name)
        mode = "rw" if record.op == "write" else "r"
        view.mem[label] = _join_mode(view.mem.get(label), mode)
    return view


def gate_refs_of(sc, kernel):
    """GateRefs for every callgate a SecurityContext grants."""
    refs = []
    for spec in sc.gate_specs:
        refs.append(GateRef(spec.entry, gate_sc=spec.gate_sc,
                            trusted=spec.trusted_arg,
                            recycled=spec.recycled))
    for gate_id in sc.gate_ids:
        try:
            record = kernel.gate_record(gate_id)
        except WedgeError:
            continue
        refs.append(GateRef(record.entry, gate_sc=record.sc,
                            trusted=record.trusted_arg,
                            gate_id=gate_id, recycled=record.recycled))
    return refs


def gate_compartment_specs(sc, kernel, *, app, sensitive_tags=(),
                           follow=None):
    """One CompartmentSpec per callgate granted by *sc*.

    Gates run in their own compartments (named ``cg:<entry>`` by the
    kernel); their declared context is the gate's ``gate_sc`` and their
    body is the entry function with the trusted argument bound.
    """
    specs = []
    seen = set()
    for ref in gate_refs_of(sc, kernel):
        if ref.name in seen:
            continue
        seen.add(ref.name)
        specs.append(CompartmentSpec(
            ref.name, app, kernel, ref.gate_sc,
            [(ref.entry, {"trusted": ref.trusted, "arg": {}})],
            sthread_prefix=f"cg:{ref.name}",
            exploit_facing=False,
            sensitive_tags=sensitive_tags,
            follow=follow))
    return specs


# ---------------------------------------------------------------------------
# the three-way diff
# ---------------------------------------------------------------------------

def lint_compartment(spec, trace=None):
    """Run the analyzer for *spec* and diff the three policies."""
    inferred = infer_policy(
        spec.roots, spec.kernel,
        gates=gate_refs_of(spec.declared_sc, spec.kernel),
        follow=spec.follow)
    declared = declared_view(spec.declared_sc, spec.kernel)
    static = static_view(inferred, spec.kernel)
    traced = traced_view(trace, spec.sthread_prefix) \
        if trace is not None else None

    findings = []
    where = f"{spec.app}/{spec.name}"

    # -- memory -----------------------------------------------------------
    for label, declared_mode in declared.mem.items():
        static_mode = static.mem.get(label)
        traced_mode = traced.mem.get(label) if traced else None
        needed = _join_mode(static_mode, traced_mode)
        if needed is None:
            findings.append(Finding(
                "UNUSED_GRANT", where, f"mem:{label}",
                f"declared {declared_mode}, never statically reachable"
                + ("" if traced is None else " nor used in the trace")))
        elif _MODE_RANK[declared_mode] > _MODE_RANK[needed]:
            findings.append(Finding(
                "OVER_PRIV", where, f"mem:{label}",
                f"declared {declared_mode}, but only {needed} is "
                f"needed (static {static_mode or '-'}, "
                f"traced {traced_mode or '-'})"))
    if traced is not None:
        for label, traced_mode in traced.mem.items():
            static_mode = static.mem.get(label)
            if _MODE_RANK[traced_mode] > _MODE_RANK[static_mode]:
                findings.append(Finding(
                    "UNSOUND", where, f"mem:{label}",
                    f"trace used {traced_mode} but static analysis "
                    f"only found {static_mode or 'nothing'}"))

    # -- sensitive exposure ----------------------------------------------
    if spec.exploit_facing:
        for label in sorted(spec.sensitive_tags):
            sources = []
            if label in declared.mem:
                sources.append(f"declared {declared.mem[label]}")
            if label in static.mem:
                sources.append(f"statically reachable "
                               f"{static.mem[label]}")
            if sources:
                findings.append(Finding(
                    "SENSITIVE_EXPOSURE", where, f"mem:{label}",
                    "sensitive tag reachable from an exploit-facing "
                    "compartment (" + ", ".join(sources) + ")"))

    # -- file descriptors --------------------------------------------------
    for fd, declared_bits in declared.fds.items():
        static_bits = static.fds.get(fd, 0)
        if static_bits == 0:
            findings.append(Finding(
                "UNUSED_GRANT", where, f"fd:{fd}",
                f"declared {sorted(_fd_modes(declared_bits))}, never "
                f"statically reachable"))
        elif declared_bits & ~static_bits:
            extra = _fd_modes(declared_bits & ~static_bits)
            findings.append(Finding(
                "OVER_PRIV", where, f"fd:{fd}",
                f"declared {sorted(_fd_modes(declared_bits))} but "
                f"static analysis only needs "
                f"{sorted(_fd_modes(static_bits))} "
                f"(unneeded: {sorted(extra)})"))

    # -- callgates ---------------------------------------------------------
    for gate in sorted(declared.gates - static.gates):
        findings.append(Finding(
            "UNUSED_GRANT", where, f"cgate:{gate}",
            "callgate granted but no reachable call site invokes it"))

    # -- syscalls vs the SELinux domain -----------------------------------
    if spec.sid is not None:
        for syscall in sorted(static.syscalls):
            try:
                spec.kernel.selinux.check_syscall(spec.sid, syscall)
            except SyscallDenied:
                findings.append(Finding(
                    "MISSING_SYSCALL", where, f"syscall:{syscall}",
                    f"statically reachable but denied by SELinux "
                    f"domain {spec.sid}"))

    return CompartmentResult(spec, declared, static, traced, findings,
                             inferred)


# ---------------------------------------------------------------------------
# supervised-gate monotonicity (the restart dimension)
# ---------------------------------------------------------------------------

def restart_widening_findings(kernel, *, app="app"):
    """RESTART_WIDENING findings for every supervised gate in *kernel*.

    Each supervised :class:`~repro.core.callgate.CallgateRecord` froze
    its grants (``baseline_grants``) when it was instantiated.  The live
    security context must stay a subset of that baseline: restarts
    rebuild the gate compartment from the live context, so any widening
    becomes real privilege at the next crash.
    """
    from repro.core.memory import prot_name
    findings = []
    for record in kernel._gates.values():
        if record.supervise is None:
            continue
        base_mem, base_fds, base_gates = record.baseline_grants
        where = f"{app}/cg:{record.name}"
        for tag_id, prot in record.sc.mem.items():
            base = base_mem.get(tag_id, 0)
            if prot & ~base:
                label = _label_for_tag(kernel, tag_id)
                findings.append(Finding(
                    "RESTART_WIDENING", where, f"mem:{label}",
                    f"live grant {prot_name(prot)} exceeds the "
                    f"instantiation baseline "
                    f"{prot_name(base) if base else 'none'}; a restart "
                    f"re-binds the widened policy"))
        for fd, bits in record.sc.fds.items():
            base = base_fds.get(fd, 0)
            if bits & ~base:
                findings.append(Finding(
                    "RESTART_WIDENING", where, f"fd:{fd}",
                    f"live modes {sorted(_fd_modes(bits))} exceed the "
                    f"instantiation baseline "
                    f"{sorted(_fd_modes(base)) or 'none'}"))
        for gate_id in sorted(set(record.sc.gate_ids) - set(base_gates)):
            findings.append(Finding(
                "RESTART_WIDENING", where, f"cgate:{gate_id}",
                "callgate granted after instantiation; restarts would "
                "hand the rebuilt compartment a gate its declared "
                "policy never held"))
    return findings
