"""The shipped lint targets: every partitioned compartment body.

Each partitioned application module exposes
``analysis_compartments(server, conn_fd=...)`` returning the
:class:`~repro.analysis.lint.CompartmentSpec` list for its sthread
bodies and callgates.  This module knows how to *build* each server and
how to *exercise* it for the dynamic (Crowbar-traced) leg of the
three-way diff.
"""

from __future__ import annotations

from repro.analysis.lint import lint_compartment

#: Descriptor number used for the modelled per-connection socket.  Any
#: value works — declared and static policies are built from the same
#: spec, and traces are never compared by descriptor number.
ANALYSIS_CONN_FD = 3


class AppTarget:
    """One shipped application: build, expose specs, exercise."""

    def __init__(self, name, make, specs, exercise):
        self.name = name
        self.make = make
        self.specs = specs
        self.exercise = exercise


# -- builders ----------------------------------------------------------------
#
# Lint servers are built with supervision on, so the traced leg leaves
# supervised gate records behind for the RESTART_WIDENING check to scan.

def _lint_policy():
    from repro.faults import RestartPolicy
    return RestartPolicy()


def _make_httpd_simple():
    from repro.apps.httpd.simple import SimplePartitionHttpd
    from repro.net import Network
    # confine=True so the syscall dimension is exercised too
    return SimplePartitionHttpd(Network(), "lint-simple:443",
                                confine=True, supervise=_lint_policy())


def _make_httpd_mitm():
    from repro.apps.httpd.mitm import MitmPartitionHttpd
    from repro.net import Network
    return MitmPartitionHttpd(Network(), "lint-mitm:443",
                              supervise=_lint_policy())


def _make_sshd_wedge():
    from repro.apps.sshd.wedge import WedgeSshd
    from repro.net import Network
    return WedgeSshd(Network(), "lint-sshd:22", supervise=_lint_policy())


def _make_pop3():
    from repro.apps.pop3.server import PartitionedPop3
    from repro.net import Network
    return PartitionedPop3(Network(), "lint-pop3:110",
                           supervise=_lint_policy())


def _make_lb():
    from repro.apps.httpd.monolithic import MonolithicHttpd
    from repro.apps.lb.server import LbServer
    from repro.cluster.health import HealthResponder
    from repro.net import Network
    network = Network()
    backend = MonolithicHttpd(network, "lint-be:443")
    responder = HealthResponder(network, "lint-be:health")
    server = LbServer(network, "lint-lb:443",
                      [{"name": "lint-be", "addr": "lint-be:443",
                        "health": "lint-be:health"}],
                      supervise=_lint_policy(),
                      managed=[backend, responder])
    server.public_key = backend.public_key
    return server


def _make_kv():
    from repro.apps.kv import WRITE_BEHIND, KvServer
    from repro.net import Network
    # write-behind so the traced leg crosses the queue/flush paths too;
    # durable so both legs see the disk rights the storage gate holds
    # (and prove no other island gains them)
    return KvServer(Network(), "lint-kv:9090", policy=WRITE_BEHIND,
                    preload={b"alpha": b"AAA"}, supervise=_lint_policy(),
                    durable=True)


def specs_of(server):
    """The CompartmentSpec list a live partitioned server exposes."""
    import importlib
    module = importlib.import_module(type(server).__module__)
    return module.analysis_compartments(server,
                                        conn_fd=ANALYSIS_CONN_FD)


_specs_of = specs_of   # TARGETS below binds the original name


# -- innocuous workloads (the traced leg) ------------------------------------

def _exercise_httpd(server):
    from repro.apps.httpd.content import build_request
    from repro.crypto import DetRNG
    from repro.tls import TlsClient
    client = TlsClient(DetRNG("lint"),
                       expected_server_key=server.public_key)
    conn = client.connect(server.network, server.addr)
    conn.request(build_request("/"))


def _exercise_sshd(server):
    from repro.crypto import DetRNG
    from repro.sshlib import SshClient
    client = SshClient(DetRNG("lint"),
                       expected_host_key=server.env.host_key.public())
    conn = client.connect(server.network, server.addr)
    conn.auth_password("alice", b"wonderland")
    conn.exec("whoami")
    conn.close()


def _exercise_lb(server):
    from repro.apps.lb.server import encode_preamble
    from repro.apps.httpd.content import build_request
    from repro.crypto import DetRNG
    from repro.tls import TlsClient
    server.health_sweep()     # the health gate's probe path, traced
    client = TlsClient(DetRNG("lint"),
                       expected_server_key=server.public_key)
    sock = server.network.connect(server.addr)
    try:
        sock.send(encode_preamble(b"lintkey1"))
        conn = client.handshake(sock, resume=False)
        conn.request(build_request("/"))
    finally:
        sock.close()


def _exercise_pop3(server):
    from repro.apps.pop3.client import Pop3Client
    client = Pop3Client(server.network, server.addr)
    client.login("alice", b"wonderland")
    client.list_messages()
    client.retrieve(1)
    client.quit()


def _exercise_kv(server):
    from repro.apps.kv import KvClient
    from repro.core.kernel import Kernel
    kernel = Kernel(net=server.network, name="lint-kv-client")
    kernel.start_main()
    client = KvClient(kernel, server.addr)
    client.get("alpha")
    client.set("beta", b"BBB", ttl=1_000_000)
    client.cas("beta", b"BBB", b"B2")
    client.delete("beta")
    client.flush()
    client.stat()


TARGETS = {
    "httpd-simple": AppTarget("httpd-simple", _make_httpd_simple,
                              _specs_of, _exercise_httpd),
    "httpd-mitm": AppTarget("httpd-mitm", _make_httpd_mitm,
                            _specs_of, _exercise_httpd),
    "sshd-wedge": AppTarget("sshd-wedge", _make_sshd_wedge,
                            _specs_of, _exercise_sshd),
    "pop3": AppTarget("pop3", _make_pop3, _specs_of, _exercise_pop3),
    "lb": AppTarget("lb", _make_lb, _specs_of, _exercise_lb),
    "kv": AppTarget("kv", _make_kv, _specs_of, _exercise_kv),
}

APP_NAMES = tuple(TARGETS)


def lint_app(name, *, with_trace=True):
    """Lint one shipped app; returns its CompartmentResult list."""
    from repro.analysis.lint import restart_widening_findings
    from repro.crowbar import CbLog
    target = TARGETS[name]
    server = target.make()
    specs = target.specs(server)
    trace = None
    if with_trace:
        server.start()
        try:
            with CbLog(server.kernel, label=f"lint-{name}") as log:
                target.exercise(server)
        finally:
            server.stop()
        trace = log.trace
    results = [lint_compartment(spec, trace) for spec in specs]
    # the restart dimension: supervised gate records instantiated while
    # exercising the app must not have outgrown their baselines
    for finding in restart_widening_findings(server.kernel, app=name):
        gate_name = finding.compartment.rsplit("cg:", 1)[-1]
        home = next((r for r in results if r.spec.name == gate_name),
                    results[0])
        home.findings.append(finding)
    return results


def lint_shipped(apps=APP_NAMES, *, with_trace=True):
    """Lint several shipped apps; returns a flat result list."""
    results = []
    for name in apps:
        results.extend(lint_app(name, with_trace=with_trace))
    return results
