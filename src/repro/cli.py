"""Command-line interface: ``python -m repro <command>``.

Quick access to the reproduction's headline results without pytest:

=================  ====================================================
command            prints
=================  ====================================================
``fig7``           primitive-creation costs (Figure 7 shape)
``fig8``           malloc / tag_new / mmap costs (Figure 8 shape)
``fig9``           native / Pin / cb-log table (Figure 9 shape)
``table2-apache``  requests/s for vanilla / wedge / recycled
``table2-ssh``     login and scp latency, vanilla vs wedge
``metrics``        partitioning LoC accounting (§5.1/§5.2)
``trace``          run a workload under Crowbar's cb-log and print the
                   cb-analyze memory report (NOT the observability
                   tracer — that is ``observe``)
``lint``           three-way least-privilege lint (declared vs
                   static vs traced) over the shipped compartments
``attack``         run the MITM or sshd attack scenario end to end
``chaos``          seeded fault-injection campaign against the shipped
                   apps; proves crash containment end to end
``overload``       seeded connection surge against the shipped apps;
                   proves bounded backlogs, deterministic shedding,
                   stream backpressure, and byte-identical admitted
                   responses (writes/checks ``BENCH_overload.json``)
``observe``        serve demo sessions under the kernel event bus and
                   span tracer; top-style summary, Chrome trace export
``cluster``        sharded multi-kernel cluster campaign behind the
                   Wedge-partitioned lb: goodput-vs-replica scaling and
                   (``--kill-kernel``) a seeded whole-kernel kill with
                   byte-identical failover (``BENCH_cluster.json``)
``recovery``       kill-at-any-point durability campaign for the kv
                   tier: seeded power loss at every syscall index, WAL
                   + checkpoint recovery, prefix-consistency proof
                   (writes/checks ``BENCH_recovery.json``)
=================  ====================================================
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _meter(kernel, fn):
    checkpoint = kernel.costs.checkpoint()
    fn()
    return kernel.costs.delta(checkpoint)


def cmd_fig7(args):
    from repro.core.kernel import Kernel
    from repro.core.policy import SecurityContext
    kernel = Kernel()
    kernel.start_main()
    gate = kernel.create_gate(lambda t, a: None, SecurityContext())
    recycled = kernel.create_gate(lambda t, a: None, SecurityContext(),
                                  recycled=True)
    kernel.cgate(recycled.id)
    rows = {
        "pthread": lambda: kernel.sthread_join(
            kernel.pthread_create(lambda a: None, spawn="inline")),
        "recycled": lambda: kernel.cgate(recycled.id),
        "sthread": lambda: kernel.sthread_join(kernel.sthread_create(
            SecurityContext(), lambda a: None, spawn="inline")),
        "callgate": lambda: kernel.cgate(gate.id),
        "fork": lambda: kernel.sthread_join(
            kernel.fork(lambda a: None, spawn="inline")),
    }
    cycles = {name: _meter(kernel, op) for name, op in rows.items()}
    base = cycles["pthread"]
    print("Figure 7 — primitive creation (model cycles):")
    for name, value in cycles.items():
        print(f"  {name:9s} {value:8,d}  {value / base:5.2f}x pthread")
    return 0


def cmd_fig8(args):
    from repro.core.kernel import Kernel
    kernel = Kernel()
    kernel.start_main()
    tag = kernel.tag_new()
    malloc = _meter(kernel, lambda: kernel.free(kernel.malloc(64)))
    smalloc = _meter(kernel,
                     lambda: kernel.sfree(kernel.smalloc(64, tag)))
    seed = kernel.tag_new()
    kernel.tag_delete(seed)
    reuse = _meter(kernel, lambda: kernel.tag_delete(kernel.tag_new()))
    nocache = Kernel(tag_cache=False)
    nocache.start_main()
    nocache.tag_delete(nocache.tag_new())
    fresh = _meter(nocache,
                   lambda: nocache.tag_delete(nocache.tag_new()))
    print("Figure 8 — memory calls (model cycles):")
    for name, value in (("malloc", malloc), ("smalloc", smalloc),
                        ("tag_new (reused)", reuse),
                        ("tag_new (fresh) / mmap", fresh)):
        print(f"  {name:24s} {value:7,d}  {value / malloc:5.1f}x malloc")
    return 0


def cmd_fig9(args):
    from repro.workloads import run_workload
    from repro.workloads.runner import FIGURE9_ORDER, MODES
    print("Figure 9 — instrumentation overhead (wall seconds):")
    print(f"  {'app':8s} {'native':>9s} {'pin':>9s} {'crowbar':>9s} "
          f"{'ratio':>7s}")
    for name in FIGURE9_ORDER:
        times = {}
        for mode in MODES:
            elapsed, _, _ = run_workload(name, mode, args.scale)
            times[mode] = elapsed
        ratio = times["crowbar"] / times["pin"]
        print(f"  {name:8s} {times['native']:9.4f} {times['pin']:9.4f} "
              f"{times['crowbar']:9.4f} {ratio:6.1f}x")
    return 0


def cmd_table2_apache(args):
    from repro.apps.httpd import MitmPartitionHttpd, MonolithicHttpd
    from repro.apps.httpd.content import build_request
    from repro.crypto import DetRNG
    from repro.net import Network
    from repro.tls import TlsClient

    flavors = {
        "vanilla": (MonolithicHttpd, {}),
        "wedge": (MitmPartitionHttpd, {"gate_mode": "fresh"}),
        "recycled": (MitmPartitionHttpd, {"gate_mode": "recycled"}),
    }
    print("Table 2 (top) — Apache throughput (requests/s):")
    print(f"  {'workload':12s} " +
          " ".join(f"{name:>9s}" for name in flavors))
    for workload in ("cached", "not-cached"):
        cells = []
        for flavor, (cls, kwargs) in flavors.items():
            server = cls(Network(), f"cli-{workload}-{flavor}:443",
                         **kwargs).start()
            try:
                client = TlsClient(
                    DetRNG("cli"),
                    expected_server_key=server.public_key)
                client.connect(server.network,
                               server.addr).request(build_request("/"))

                def op(index):
                    if workload == "cached":
                        conn = client.connect(server.network,
                                              server.addr)
                    else:
                        fresh_client = TlsClient(
                            DetRNG(f"cli{index}"),
                            expected_server_key=server.public_key)
                        conn = fresh_client.connect(
                            server.network, server.addr, resume=False)
                    conn.request(build_request("/"))

                op(0)
                start = time.perf_counter()
                for i in range(args.requests):
                    op(i + 1)
                cells.append(args.requests /
                             (time.perf_counter() - start))
            finally:
                server.stop()
        print(f"  {workload:12s} " +
              " ".join(f"{cell:9.1f}" for cell in cells))
    return 0


def cmd_table2_ssh(args):
    from repro.apps.sshd import MonolithicSshd, WedgeSshd
    from repro.crypto import DetRNG
    from repro.net import Network
    from repro.sshlib import SshClient

    payload = bytes(range(256)) * (512 * 1024 // 256)
    print("Table 2 (bottom) — OpenSSH latency (seconds, 512 KiB scp):")
    for flavor, cls in (("vanilla", MonolithicSshd),
                        ("wedge", WedgeSshd)):
        server = cls(Network(), f"cli-ssh-{flavor}:22").start()
        try:
            def login(index):
                client = SshClient(
                    DetRNG(f"cli{index}"),
                    expected_host_key=server.env.host_key.public())
                conn = client.connect(server.network, server.addr)
                conn.auth_password("alice", b"wonderland")
                return conn

            login(0).close()
            start = time.perf_counter()
            conn = login(1)
            login_delay = time.perf_counter() - start
            start = time.perf_counter()
            conn.scp_upload("/home/alice/cli.bin", payload)
            scp_delay = time.perf_counter() - start
            conn.close()
            print(f"  {flavor:9s} login={login_delay:7.4f}  "
                  f"scp={scp_delay:7.4f}")
        finally:
            server.stop()
    return 0


def cmd_metrics(args):
    from repro.metrics import full_report
    print("Partitioning metrics (§5.1/§5.2):")
    for app, numbers in full_report().items():
        print(f"  {app}:")
        print(f"    callgate LoC        : {numbers['callgate_loc']}")
        print(f"    sthread LoC         : {numbers['sthread_loc']}")
        print(f"    privileged fraction : "
              f"{numbers['privileged_fraction']:.0%}")
        print(f"    changed LoC         : {numbers['changed_loc']} "
              f"({numbers['changed_fraction']:.1%} of "
              f"{numbers['total_loc']})")
    return 0


def cmd_trace(args):
    from repro.crowbar import CbLog, format_report, memory_for_procedure
    from repro.workloads import ALL_KERNELS
    from repro.workloads.memlib import make_kernel
    if args.workload not in ALL_KERNELS:
        print(f"unknown workload {args.workload!r}; choose from "
              f"{sorted(ALL_KERNELS)}", file=sys.stderr)
        return 2
    kernel = make_kernel(f"cli-{args.workload}")
    with CbLog(kernel, label=args.workload) as log:
        checksum = ALL_KERNELS[args.workload](kernel, "quick")
    print(f"traced {args.workload}: {len(log.trace)} accesses, "
          f"checksum {checksum}")
    procedure = args.procedure or args.workload
    print(format_report(memory_for_procedure(log.trace, procedure),
                        title=f"{procedure} + descendants"))
    return 0


def cmd_lint(args):
    from repro.analysis import APP_NAMES, format_report, lint_app
    from repro.analysis.report import results_json
    names = [args.app] if args.app else list(APP_NAMES)
    unknown = [name for name in names if name not in APP_NAMES]
    if unknown:
        print(f"unknown app {unknown[0]!r}; choose from "
              f"{sorted(APP_NAMES)}", file=sys.stderr)
        return 2
    results = []
    for name in names:
        results.extend(lint_app(name, with_trace=not args.no_trace))
    payload = results_json(results)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_report(results))
    # unresolved operands always fail: an operand the analyzer cannot
    # resolve is a privilege demand the lint cannot see
    if payload["errors"] or payload["unresolved"] \
            or (args.strict and payload["warnings"]):
        return 1
    return 0


def cmd_verify(args):
    from repro.analysis import APP_NAMES, verify_app
    from repro.analysis.report import verification_json
    names = [args.app] if args.app else list(APP_NAMES)
    unknown = [name for name in names if name not in APP_NAMES]
    if unknown:
        print(f"unknown app {unknown[0]!r}; choose from "
              f"{sorted(APP_NAMES)}", file=sys.stderr)
        return 2
    reports = []
    for name in names:
        _, app_reports = verify_app(name)
        reports.extend(app_reports)
    payload = verification_json(reports)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for entry in payload["compartments"]:
            state = "verified" if entry["verified"] else "REJECTED"
            print(f"[{entry['app']}/{entry['compartment']}] {state}")
            for reason in entry["reasons"]:
                print(f"    {reason}")
        print(f"{payload['verified']} verified, "
              f"{payload['rejected']} rejected")
    return 0 if payload["rejected"] == 0 else 1


def cmd_attack(args):
    if args.scenario == "mitm":
        print("running the MITM campaign against both partitionings "
              "(the compact form of examples/mitm_attack_demo.py)...")
        from repro.apps.httpd import (MitmPartitionHttpd,
                                      SimplePartitionHttpd)
        from repro.apps.httpd.content import build_request
        from repro.attacks import payloads
        from repro.attacks.exploit import start_campaign
        from repro.attacks.mitm import (MitmAttacker,
                                        hello_exploit_rewriter)
        from repro.crypto import DetRNG
        from repro.net import Network
        from repro.tls import TlsClient
        for title, cls, payload in (
                ("Figure 2", SimplePartitionHttpd,
                 payloads.PAYLOAD_STEAL_SESSION_KEY),
                ("Figures 3-5", MitmPartitionHttpd,
                 payloads.PAYLOAD_PROBE_FINE_PARTITION)):
            net = Network()
            server = cls(net, f"cli-atk-{cls.variant}:443").start()
            loot = start_campaign()
            attacker = MitmAttacker(
                client_to_server=hello_exploit_rewriter(payload),
                loot=loot)
            net.interpose(server.addr, attacker)
            victim = TlsClient(DetRNG("victim"),
                               expected_server_key=server.public_key)
            conn = victim.connect(net, server.addr)
            conn.request(build_request("/account"))
            time.sleep(0.3)
            stolen = loot.get("session_master") == conn.master
            print(f"  vs {title}: session key "
                  f"{'STOLEN' if stolen else 'safe'} "
                  f"({len(loot.attempts)} denials)")
            server.stop()
        return 0
    print(f"unknown scenario {args.scenario!r}; choose 'mitm'",
          file=sys.stderr)
    return 2


def cmd_chaos(args):
    from repro.faults.chaos import (CHAOS_APP_NAMES, cow_freshness_probe,
                                    run_chaos)
    names = [args.app] if args.app else list(CHAOS_APP_NAMES)
    unknown = [name for name in names if name not in CHAOS_APP_NAMES]
    if unknown:
        print(f"unknown app {unknown[0]!r}; choose from "
              f"{sorted(CHAOS_APP_NAMES)}", file=sys.stderr)
        return 2
    failed = False
    tlb = False if args.no_tlb else None
    for name in names:
        report = run_chaos(name, seed=args.seed, faults=args.faults,
                           tlb=tlb, scheduler=args.scheduler,
                           power_loss=args.power_loss,
                           breaker_cooldown=args.breaker_cooldown)
        print(report.format(flight_dump=args.flight_dump))
        failed = failed or not report.passed
    probe = cow_freshness_probe()
    print(f"cow freshness probe: "
          f"{'ok' if probe['fresh'] else 'FAILED'} "
          f"(observations={probe['observations']})")
    failed = failed or not probe["fresh"]
    return 1 if failed else 0


def cmd_overload(args):
    import json
    import os

    from repro.resilience.overload import (check_artifact,
                                           overload_app_names,
                                           run_overload, write_artifact)
    app_names = overload_app_names()
    names = [args.app] if args.app else list(app_names)
    unknown = [name for name in names if name not in app_names]
    if unknown:
        print(f"unknown app {unknown[0]!r}; choose from "
              f"{sorted(app_names)}", file=sys.stderr)
        return 2
    report = run_overload(names, clients=args.clients,
                          backlog=args.backlog, seed=args.seed,
                          high_water=args.high_water,
                          compare=not args.no_compare,
                          scheduler=args.scheduler,
                          connections=args.connections)
    print(report.format())
    failed = not report.passed
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, "BENCH_overload.json")
        write_artifact(report, path)
        print(f"wrote {path}")
    if args.check:
        baseline_path = os.path.join(args.check, "BENCH_overload.json")
        if not os.path.exists(baseline_path):
            print(f"no baseline at {baseline_path}", file=sys.stderr)
            return 2
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        problems = check_artifact(report.artifact(), baseline)
        if problems:
            print(f"REGRESSION vs {baseline_path}:")
            for problem in problems:
                print(f"  {problem}")
            failed = True
        else:
            print(f"goodput within tolerance of {baseline_path}")
    return 1 if failed else 0


def cmd_cluster(args):
    import json
    import os

    from repro.cluster.campaign import run_cluster
    from repro.core.kernel import Kernel
    from repro.resilience.overload import check_artifact, write_artifact
    with Kernel.scheduler_override(args.scheduler):
        report = run_cluster(kernels=args.kernels,
                             replicas=args.replicas,
                             requests=args.requests, rounds=args.rounds,
                             seed=args.seed, kill=args.kill_kernel)
    print(report.format())
    failed = not report.passed
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, "BENCH_cluster.json")
        write_artifact(report, path)
        print(f"wrote {path}")
    if args.check:
        baseline_path = os.path.join(args.check, "BENCH_cluster.json")
        if not os.path.exists(baseline_path):
            print(f"no baseline at {baseline_path}", file=sys.stderr)
            return 2
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        problems = check_artifact(report.artifact(), baseline)
        if problems:
            print(f"REGRESSION vs {baseline_path}:")
            for problem in problems:
                print(f"  {problem}")
            failed = True
        else:
            print(f"goodput within tolerance of {baseline_path}")
    return 1 if failed else 0


def cmd_kv(args):
    import json
    import os

    from repro.apps.kv.campaign import run_kv
    from repro.core.kernel import Kernel
    from repro.resilience.overload import check_artifact, write_artifact
    with Kernel.scheduler_override(args.scheduler):
        report = run_kv(ops=args.ops, seed=args.seed,
                        httpd=not args.no_httpd)
    print(report.format())
    failed = not report.passed
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, "BENCH_kv.json")
        write_artifact(report, path)
        print(f"wrote {path}")
    if args.check:
        baseline_path = os.path.join(args.check, "BENCH_kv.json")
        if not os.path.exists(baseline_path):
            print(f"no baseline at {baseline_path}", file=sys.stderr)
            return 2
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        problems = check_artifact(report.artifact(), baseline)
        if problems:
            print(f"REGRESSION vs {baseline_path}:")
            for problem in problems:
                print(f"  {problem}")
            failed = True
        else:
            print(f"model cycles within tolerance of {baseline_path}")
    return 1 if failed else 0


def cmd_recovery(args):
    import json
    import os

    from repro.apps.kv.recovery import run_recovery
    from repro.resilience.overload import check_artifact, write_artifact
    report = run_recovery(seed=args.seed, ops=args.ops,
                          stride=args.stride)
    print(report.format())
    failed = not report.passed
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, "BENCH_recovery.json")
        write_artifact(report, path)
        print(f"wrote {path}")
    if args.check:
        baseline_path = os.path.join(args.check, "BENCH_recovery.json")
        if not os.path.exists(baseline_path):
            print(f"no baseline at {baseline_path}", file=sys.stderr)
            return 2
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        problems = check_artifact(report.artifact(), baseline)
        if problems:
            print(f"REGRESSION vs {baseline_path}:")
            for problem in problems:
                print(f"  {problem}")
            failed = True
        else:
            print(f"model cycles within tolerance of {baseline_path}")
    return 1 if failed else 0


def cmd_observe(args):
    from repro.observe.export import validate_file
    if args.validate:
        problems = validate_file(args.validate)
        if problems:
            print(f"{args.validate}: INVALID Chrome trace JSON:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"{args.validate}: valid Chrome trace-event JSON")
        return 0

    from repro.observe.session import (OBSERVE_APP_NAMES, observed_session,
                                       resolve_app)
    try:
        resolve_app(args.app)
    except KeyError:
        print(f"unknown app {args.app!r}; choose from "
              f"{sorted(OBSERVE_APP_NAMES)}", file=sys.stderr)
        return 2
    observer = observed_session(args.app, requests=args.requests,
                                tlb_events=args.tlb_events)
    print(observer.summary())
    if args.export:
        from repro.observe.export import validate_chrome_trace
        trace = observer.chrome_trace()
        problems = validate_chrome_trace(trace)
        observer.export(args.export)
        if problems:
            print(f"wrote {args.export} — but it FAILED validation:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"wrote {args.export} "
              f"({len(trace['traceEvents'])} trace events; load it in "
              f"ui.perfetto.dev or chrome://tracing)")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wedge (NSDI 2008) reproduction — quick results")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig7", help="Figure 7 shape").set_defaults(
        fn=cmd_fig7)
    sub.add_parser("fig8", help="Figure 8 shape").set_defaults(
        fn=cmd_fig8)
    p9 = sub.add_parser("fig9", help="Figure 9 table")
    p9.add_argument("--scale", default="quick",
                    choices=["quick", "bench"])
    p9.set_defaults(fn=cmd_fig9)
    pa = sub.add_parser("table2-apache", help="Apache throughput")
    pa.add_argument("-n", "--requests", type=int, default=10)
    pa.set_defaults(fn=cmd_table2_apache)
    sub.add_parser("table2-ssh", help="OpenSSH latency").set_defaults(
        fn=cmd_table2_ssh)
    sub.add_parser("metrics",
                   help="partitioning metrics").set_defaults(
        fn=cmd_metrics)
    pt = sub.add_parser(
        "trace",
        help="Crowbar cb-log + cb-analyze a memory workload (for the "
             "kernel event/span tracer, see 'observe')")
    pt.add_argument("workload")
    pt.add_argument("--procedure", default=None)
    pt.set_defaults(fn=cmd_trace)
    pl = sub.add_parser("lint",
                        help="three-way least-privilege lint")
    pl.add_argument("--app", default=None,
                    help="lint one app instead of all")
    pl.add_argument("--strict", action="store_true",
                    help="exit non-zero on warnings too")
    pl.add_argument("--no-trace", action="store_true",
                    help="skip the dynamic (Crowbar-traced) leg")
    pl.add_argument("--json", action="store_true",
                    help="emit the machine-readable report")
    pl.set_defaults(fn=cmd_lint)
    pvf = sub.add_parser(
        "verify",
        help="prove static ⊆ granted; compile certificate templates")
    pvf.add_argument("--app", default=None,
                     help="verify one app instead of all")
    pvf.add_argument("--json", action="store_true",
                     help="emit the machine-readable report")
    pvf.set_defaults(fn=cmd_verify)
    pk = sub.add_parser("attack", help="run an attack scenario")
    pk.add_argument("scenario", nargs="?", default="mitm")
    pk.set_defaults(fn=cmd_attack)
    pc = sub.add_parser("chaos",
                        help="fault-injection campaign (containment)")
    pc.add_argument("--seed", type=int, default=0,
                    help="FaultPlan seed (campaigns are reproducible)")
    pc.add_argument("--faults", type=int, default=50,
                    help="injections to reach per app")
    pc.add_argument("--app", default=None,
                    help="chaos one app instead of all")
    pc.add_argument("--no-tlb", action="store_true",
                    help="run with the simulated TLB disabled "
                         "(differential ablation)")
    pc.add_argument("--scheduler", default=None,
                    choices=["threads", "reactor"],
                    help="kernel scheduling mode for the campaign "
                         "(default: the kernel default, threads)")
    pc.add_argument("--flight-dump", action="store_true",
                    help="print the newest flight-recorder dump even "
                         "when the campaign passed")
    pc.add_argument("--power-loss", action="store_true",
                    help="finish each kv campaign with a seeded "
                         "power-loss kill and a WAL recovery drill "
                         "(kv app only; requires a durable store)")
    pc.add_argument("--breaker-cooldown", type=float, default=0.005,
                    help="circuit-breaker cooldown (seconds) for the "
                         "breaker recovery drill (default: 0.005)")
    pc.set_defaults(fn=cmd_chaos)
    pv = sub.add_parser(
        "overload",
        help="connection-surge campaign (overload resilience)")
    pv.add_argument("-n", "--clients", type=int, default=200,
                    help="surge size per app (default: 200)")
    pv.add_argument("--backlog", type=int, default=32,
                    help="listener accept-queue cap (default: 32)")
    pv.add_argument("--seed", type=int, default=0,
                    help="client seed (campaigns are reproducible)")
    pv.add_argument("--high-water", type=int, default=64 * 1024,
                    help="per-stream buffer cap in bytes "
                         "(default: 65536)")
    pv.add_argument("--app", default=None,
                    help="surge one app instead of all")
    pv.add_argument("--no-compare", action="store_true",
                    help="skip the resilience on-vs-off comparison leg")
    pv.add_argument("--scheduler", default=None,
                    choices=["threads", "reactor"],
                    help="kernel scheduling mode for the app surges "
                         "(default: the kernel default, threads)")
    pv.add_argument("--connections", type=int, default=0,
                    help="also run the reactor scale leg at this "
                         "connection count (0 = skip; try 10000)")
    pv.add_argument("--out", default=None, metavar="DIR",
                    help="write BENCH_overload.json into DIR")
    pv.add_argument("--check", default=None, metavar="DIR",
                    help="compare goodput against DIR/"
                         "BENCH_overload.json (fail on >10%% drop)")
    pv.set_defaults(fn=cmd_overload)
    pcl = sub.add_parser(
        "cluster",
        help="sharded multi-kernel cluster campaign (failover)")
    pcl.add_argument("--kernels", type=int, default=3,
                     help="simulated kernels to boot (default: 3)")
    pcl.add_argument("--replicas", type=int, default=2,
                     help="httpd replicas per kernel (default: 2)")
    pcl.add_argument("-n", "--requests", type=int, default=8,
                     help="distinct routing keys per leg (default: 8)")
    pcl.add_argument("--rounds", type=int, default=7,
                     help="kill-leg scheduling rounds (default: 7)")
    pcl.add_argument("--seed", type=int, default=0,
                     help="KernelFailure seed (victim and kill round)")
    pcl.add_argument("--kill-kernel", action="store_true",
                     help="run the seeded whole-kernel kill leg too")
    pcl.add_argument("--scheduler", default=None,
                     choices=["threads", "reactor"],
                     help="kernel scheduling mode for every cluster "
                          "node (default: the kernel default, threads)")
    pcl.add_argument("--out", default=None, metavar="DIR",
                     help="write BENCH_cluster.json into DIR")
    pcl.add_argument("--check", default=None, metavar="DIR",
                     help="compare against DIR/BENCH_cluster.json "
                          "(fail on >10%% goodput drop)")
    pcl.set_defaults(fn=cmd_cluster)
    pkv = sub.add_parser(
        "kv",
        help="kv/cache-tier campaign: op costs, cached-vs-uncached "
             "httpd, write-behind shed")
    pkv.add_argument("-n", "--ops", type=int, default=8,
                     help="distinct keys/paths per leg (default: 8)")
    pkv.add_argument("--seed", type=int, default=0,
                     help="TTL-jitter seed for the cache clients")
    pkv.add_argument("--no-httpd", action="store_true",
                     help="skip the cluster-backed httpd comparison leg")
    pkv.add_argument("--scheduler", default=None,
                     choices=["threads", "reactor"],
                     help="kernel scheduling mode for every kernel "
                          "(default: the kernel default, threads)")
    pkv.add_argument("--out", default=None, metavar="DIR",
                     help="write BENCH_kv.json into DIR")
    pkv.add_argument("--check", default=None, metavar="DIR",
                     help="compare against DIR/BENCH_kv.json "
                          "(fail on >10%% model-cycle rise)")
    pkv.set_defaults(fn=cmd_kv)
    pr = sub.add_parser(
        "recovery",
        help="kv durability campaign: power loss at every syscall "
             "index, WAL + checkpoint recovery, prefix consistency")
    pr.add_argument("--seed", type=int, default=0,
                    help="workload and power-loss tear seed")
    pr.add_argument("-n", "--ops", type=int, default=24,
                    help="logged mutations in the workload "
                         "(default: 24)")
    pr.add_argument("--stride", type=int, default=1,
                    help="kill every Nth syscall index instead of all "
                         "(default: 1 = exhaustive)")
    pr.add_argument("--out", default=None, metavar="DIR",
                    help="write BENCH_recovery.json into DIR")
    pr.add_argument("--check", default=None, metavar="DIR",
                    help="compare against DIR/BENCH_recovery.json "
                         "(fail on >10%% model-cycle rise)")
    pr.set_defaults(fn=cmd_recovery)
    po = sub.add_parser(
        "observe",
        help="event bus + span tracing over one app's demo sessions")
    po.add_argument("--app", default="httpd",
                    help="which app to observe (default: httpd)")
    po.add_argument("-n", "--requests", type=int, default=1,
                    help="client sessions to serve under observation")
    po.add_argument("--export", default=None, metavar="PATH",
                    help="write a Chrome trace-event JSON "
                         "(ui.perfetto.dev / chrome://tracing)")
    po.add_argument("--tlb-events", action="store_true",
                    help="also record the high-volume tlb.hit/tlb.miss "
                         "stream")
    po.add_argument("--validate", default=None, metavar="PATH",
                    help="validate an exported trace JSON instead of "
                         "running anything")
    po.set_defaults(fn=cmd_observe)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
