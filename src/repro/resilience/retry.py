"""Client-side retries: a bounded budget with seeded-jitter backoff.

Overload makes three *transient* typed errors common at clients:
:class:`~repro.core.errors.NetTimeout` (slow peer),
:class:`~repro.core.errors.PeerReset` (torn connection) and
:class:`~repro.core.errors.ConnectionShed` (admission control said "not
now").  :func:`call_with_retry` retries exactly those, spacing attempts
by exponential backoff with deterministic jitter (seeded — two runs of
the same campaign retry at the same instants, which keeps the overload
harness reproducible).

Two things are deliberately **not** retried:

* :class:`~repro.core.errors.DeadlineExceeded` — the whole request is
  out of budget; retrying cannot help (and it subclasses ``NetTimeout``,
  so the exclusion is explicit, not accidental).
* Everything else (refused connections, protocol errors, degraded
  gates) — those are not transients of the network.

If an ambient :class:`~repro.resilience.Deadline` is active, the retry
loop respects it: no sleep may overrun the budget, and an expired
budget raises ``DeadlineExceeded`` instead of burning attempts.
"""

from __future__ import annotations

import random
import time

from repro.core.errors import (ConnectionShed, DeadlineExceeded, NetTimeout,
                               PeerReset, WedgeError)
from repro.resilience.deadline import current_deadline

#: The transient, retry-safe error classes (DeadlineExceeded is carved
#: out explicitly in the loop even though it subclasses NetTimeout).
DEFAULT_RETRY_ON = (NetTimeout, PeerReset, ConnectionShed)


class RetryPolicy:
    """A bounded retry budget with seeded-jitter exponential backoff.

    ``max_attempts`` counts the first try too (``max_attempts=1`` means
    no retries).  The delay before retry *k* (1-based) is
    ``base_delay * factor**(k-1) * (1 + jitter * u_k)`` with ``u_k``
    drawn from a private ``random.Random(seed)`` — deterministic per
    policy instance.
    """

    def __init__(self, max_attempts=3, *, base_delay=0.01, factor=2.0,
                 jitter=0.5, seed=0, max_delay=1.0):
        if max_attempts < 1:
            raise WedgeError("max_attempts must be >= 1")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.factor = float(factor)
        self.jitter = float(jitter)
        self.max_delay = float(max_delay)
        self.seed = seed
        self._rng = random.Random(seed)

    def delays(self):
        """The (deterministic) sleep before each retry, lazily."""
        delay = self.base_delay
        while True:
            yield min(delay * (1.0 + self.jitter * self._rng.random()),
                      self.max_delay)
            delay *= self.factor

    def __repr__(self):
        return (f"<RetryPolicy attempts={self.max_attempts} "
                f"base={self.base_delay} seed={self.seed}>")


def call_with_retry(fn, policy=None, *, retry_on=DEFAULT_RETRY_ON,
                    sleep=time.sleep, on_retry=None):
    """Call ``fn()`` under *policy*; retry transient typed errors.

    Returns ``fn``'s result.  Re-raises the last error once the attempt
    budget is exhausted, immediately for non-retryable errors, and as
    :class:`DeadlineExceeded` the moment the ambient deadline cannot
    cover the next backoff sleep.  ``on_retry(attempt, exc, delay)`` is
    an optional observation hook.
    """
    policy = policy or RetryPolicy()
    delays = policy.delays()
    last = None
    for attempt in range(1, policy.max_attempts + 1):
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("retry attempt")
        try:
            return fn()
        except DeadlineExceeded:
            raise                     # out of budget: never retried
        except retry_on as exc:
            last = exc
            if attempt >= policy.max_attempts:
                raise
            delay = next(delays)
            if deadline is not None and deadline.remaining() < delay:
                raise DeadlineExceeded(
                    f"retry budget outlives the deadline "
                    f"(attempt {attempt}: {exc})",
                    op="retry", deadline=deadline) from exc
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                sleep(delay)
    raise last  # pragma: no cover - loop always returns or raises
