"""Overload resilience: bounded queues, deadlines, breakers, retries.

The ROADMAP's north star is a service that survives heavy traffic.  This
package is the overload-robustness layer threaded through the simulated
stack:

* bounded **accept backlogs** and **high-water byte streams** live in
  :mod:`repro.net` (admission control sheds with a typed
  :class:`~repro.core.errors.ConnectionShed`; fast senders block on real
  backpressure);
* :mod:`repro.resilience.deadline` — an end-to-end
  :class:`Deadline` propagated ambiently through every blocking
  chokepoint, surfacing as typed
  :class:`~repro.core.errors.DeadlineExceeded` at the caller;
* :mod:`repro.resilience.breaker` — the :class:`CircuitBreaker` that
  makes a degraded supervised callgate recoverable
  (closed → open → half-open probe → closed);
* :mod:`repro.resilience.retry` — a client-side
  :class:`RetryPolicy` with seeded-jitter exponential backoff over the
  transient typed errors;
* :mod:`repro.resilience.overload` — the ``python -m repro overload``
  campaign proving the bounds deterministically against all four
  shipped apps (imported lazily: it pulls in the apps).
"""

from repro.resilience.breaker import (CLOSED, HALF_OPEN, OPEN,
                                      BreakerPolicy, CircuitBreaker)
from repro.resilience.deadline import (Deadline, current_deadline,
                                       deadline_scope)
from repro.resilience.retry import (DEFAULT_RETRY_ON, RetryPolicy,
                                    call_with_retry)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "BreakerPolicy",
    "CircuitBreaker",
    "DEFAULT_RETRY_ON",
    "Deadline",
    "RetryPolicy",
    "call_with_retry",
    "current_deadline",
    "deadline_scope",
]
