"""End-to-end deadlines: one budget for a whole request.

Per-hop timeouts compose badly: a request that crosses four compartments,
each willing to wait 10 s, can take 40 s to fail — long after the client
gave up.  A :class:`Deadline` is the alternative: the *entry point* of a
request decides the total budget once, and every blocking chokepoint
downstream (stream ``send``/``recv``, ``Listener.accept``, callgate
entry) derives its local wait from the **remaining** budget.  Exhaustion
surfaces as a typed :class:`~repro.core.errors.DeadlineExceeded` at the
caller, within the deadline — not as a late
:class:`~repro.core.errors.NetTimeout` deep in the callee.

Propagation is ambient: :func:`deadline_scope` pushes a deadline onto a
thread-local stack and the chokepoints consult :func:`current_deadline`.
Nested scopes never *extend* the budget — an inner scope is clamped to
its enclosing deadline, so a compartment cannot grant itself more time
than its caller had.  This module imports only :mod:`repro.core.errors`,
so the net layer and the kernel can use it without a cycle.
"""

from __future__ import annotations

import threading
import time

from repro.core.errors import DeadlineExceeded

_tls = threading.local()


class Deadline:
    """An absolute point on the monotonic clock a request must beat."""

    __slots__ = ("expires_at", "label", "_clock")

    def __init__(self, expires_at, *, label="", clock=time.monotonic):
        self.expires_at = float(expires_at)
        self.label = label
        self._clock = clock

    @classmethod
    def after(cls, seconds, *, label="", clock=time.monotonic):
        """The usual constructor: a budget of *seconds* from now."""
        return cls(clock() + float(seconds), label=label, clock=clock)

    def remaining(self):
        """Seconds of budget left (negative once expired)."""
        return self.expires_at - self._clock()

    @property
    def expired(self):
        return self.remaining() <= 0.0

    def check(self, op="deadline"):
        """Raise :class:`DeadlineExceeded` if the budget is gone."""
        if self.expired:
            raise DeadlineExceeded(
                f"deadline {self.label or 'for request'!s} exceeded "
                f"before {op}", op=op, deadline=self)

    def clamp(self, timeout):
        """The local wait a chokepoint may use: ``min(timeout,
        remaining)``, floored at 0 (``timeout=None`` means the deadline
        alone bounds the wait)."""
        remaining = max(0.0, self.remaining())
        if timeout is None:
            return remaining
        return min(float(timeout), remaining)

    def __repr__(self):
        return (f"<Deadline {self.label!r} "
                f"remaining={self.remaining():.3f}s>")


def current_deadline():
    """The innermost active deadline on this thread, or ``None``."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


class deadline_scope:
    """Context manager making *deadline* ambient for the calling thread.

    A nested scope is clamped to the enclosing one (the earlier of the
    two expiries wins), so budgets only ever shrink on the way down.
    ``deadline_scope(None)`` is a no-op scope, convenient for call sites
    that propagate an optional deadline.
    """

    def __init__(self, deadline):
        self.deadline = deadline
        self._pushed = False

    def __enter__(self):
        if self.deadline is None:
            return None
        outer = current_deadline()
        effective = self.deadline
        if outer is not None and outer.expires_at < effective.expires_at:
            effective = outer
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        stack.append(effective)
        self._pushed = True
        return effective

    def __exit__(self, *exc):
        if self._pushed:
            _tls.stack.pop()
        return False
