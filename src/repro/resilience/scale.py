"""The 10k-connection scale leg: ``python -m repro overload --connections N``.

The threaded surge campaign (:mod:`repro.resilience.overload`) tops out
around a few hundred clients — every connection is an OS thread on each
side, so 10k connections would need 20k+ threads.  This leg proves the
reactor core removes that ceiling: **one** kernel on its readiness loop
serves *N* concurrent echo sessions with per-connection cooperative
sthreads, and N concurrent clients ride the same loop as plain reactor
tasks.  No OS thread is created per connection anywhere.

The protocol is a 4-byte big-endian length-prefixed echo: the handler
reads one frame, routes the payload through the compartment memory
system (``malloc`` → ``mem_write`` → ``mem_read`` → ``sfree`` — so the
leg exercises the page-table/bus path per connection, not just stream
plumbing), and replies with the reversed payload in the same framing.
Each client checks the reversal byte-for-byte.

Latency is measured in **model cycles**, not wall time: a client
samples ``kernel.costs.cycles()`` right before sending and right after
the full response arrives.  Under the single-threaded cooperative loop
that difference is exactly the modelled work the kernel performed while
the request was in flight — deterministic for a given (seed, N), and
therefore checkable in CI with a tight tolerance (``_cycles`` metrics
in ``BENCH_overload.json``; *higher* is the regression).

Per-connection memory is kept linear in live connections by spawning
handler sthreads with page-sized private regions
(``sthread_create(..., heap_size=..., stack_size=...)``): two heap
pages plus one stack page instead of the 40-page default.
"""

from __future__ import annotations

import time

from repro.core.errors import ConnectionShed, WedgeError
from repro.core.kernel import Kernel
from repro.core.memory import PAGE_SIZE
from repro.core.policy import FD_RW, SecurityContext, sc_fd_add
from repro.net import costream
from repro.net.network import Network

DEFAULT_CONNECTIONS = 10_000

#: Payload size per echo request.  Small on purpose: the leg measures
#: connection *count* scaling, not bulk throughput.
PAYLOAD_SIZE = 32

#: Handler sthread private regions (bytes).  Two heap pages cover the
#: per-request ``malloc`` plus allocator bookkeeping; one stack page is
#: plenty for a body that never recurses.
HANDLER_HEAP = 2 * PAGE_SIZE
HANDLER_STACK = PAGE_SIZE

#: Generous wall cap for one full campaign; purely a harness guard
#: (the loop itself detects deadlock long before this).
SCALE_WALL_TIMEOUT = 600.0


def _frame(payload):
    return len(payload).to_bytes(4, "big") + payload


def _payload_for(seed, index):
    """Deterministic per-client payload, exactly PAYLOAD_SIZE bytes."""
    stamp = f"s{seed}c{index}:".encode()
    body = stamp + bytes((index + i) & 0xFF
                         for i in range(PAYLOAD_SIZE - len(stamp)))
    return body[:PAYLOAD_SIZE]


class ScaleResult:
    """One scale run: completion counts, latency profile, violations."""

    def __init__(self, *, connections, seed):
        self.connections = connections
        self.seed = seed
        self.completed = 0
        self.mismatches = 0
        self.shed = 0
        self.errors = []
        self.latencies = []          # model cycles, one per completion
        self.p50 = 0
        self.p95 = 0
        self.p99 = 0
        self.total_cycles = 0
        self.peak_live = 0
        self.dispatches = 0
        self.double_dispatches = 0
        self.wall_seconds = 0.0
        self.violations = []

    @property
    def passed(self):
        return not self.violations

    def _percentiles(self):
        if not self.latencies:
            return
        ordered = sorted(self.latencies)
        last = len(ordered) - 1

        def pick(q):
            return ordered[min(last, int(last * q))]

        self.p50 = pick(0.50)
        self.p95 = pick(0.95)
        self.p99 = pick(0.99)

    def format(self):
        lines = [
            f"  scale: {'PASS' if self.passed else 'FAIL'} "
            f"({self.connections} connections on one reactor, "
            f"{self.wall_seconds:.1f}s)",
            f"    completed {self.completed}, shed {self.shed}, "
            f"mismatches {self.mismatches}, {len(self.errors)} errors",
            f"    latency (model cycles): p50 {self.p50:,} / "
            f"p95 {self.p95:,} / p99 {self.p99:,}",
            f"    peak live tasks {self.peak_live}, "
            f"{self.dispatches} dispatches, "
            f"{self.double_dispatches} double dispatches",
        ]
        for violation in self.violations:
            lines.append(f"    VIOLATION: {violation}")
        return "\n".join(lines)


def run_scale(*, connections=DEFAULT_CONNECTIONS, seed=0,
              payload_size=PAYLOAD_SIZE, wall_timeout=SCALE_WALL_TIMEOUT):
    """Serve *connections* concurrent echo sessions on one reactor.

    Everything — acceptor, N per-connection handler sthreads, N clients
    — is a cooperative task on a single ``Kernel(scheduler="reactor")``.
    The backlog is sized to admit every connection (this leg proves
    scale, the surge legs prove shedding), so ``shed`` must end at 0.
    """
    del payload_size  # fixed at PAYLOAD_SIZE; kept for signature clarity
    net = Network()
    net.default_backlog = connections + 8
    kernel = Kernel(net=net, name="scale", scheduler="reactor")
    kernel.start_main()
    reactor = kernel.reactor
    result = ScaleResult(connections=connections, seed=seed)
    addr = f"scale-{seed}:9000"
    listen_fd = kernel.listen(addr)
    accepted = [0]

    # Per-operation waits get the whole campaign's wall budget: the
    # reactor detects genuine deadlocks and max_steps bounds livelock,
    # so short per-op timeouts add nothing but flakiness on a loaded
    # host (a contended CI runner stretches 4s of work past the 10s
    # costream default and 990 healthy clients "time out").
    def handler(fd):
        header = yield from kernel.co_recv_exact(fd, 4,
                                                 timeout=wall_timeout)
        size = int.from_bytes(header, "big")
        payload = yield from kernel.co_recv_exact(fd, size,
                                                  timeout=wall_timeout)
        # route the bytes through compartment memory: the scale leg
        # must exercise the per-sthread page table, not just streams
        buf = kernel.malloc(size)
        kernel.mem_write(buf, payload)
        data = kernel.mem_read(buf, size)
        kernel.sfree(buf)
        yield from kernel.co_send(fd, _frame(bytes(data[::-1])))
        kernel.close(fd)

    def acceptor():
        while accepted[0] < connections:
            fd = yield from kernel.co_accept(listen_fd)
            index = accepted[0]
            accepted[0] += 1
            sc = SecurityContext()
            sc_fd_add(sc, fd, FD_RW)
            kernel.sthread_create(sc, handler, fd,
                                  name=f"conn{index}",
                                  heap_size=HANDLER_HEAP,
                                  stack_size=HANDLER_STACK)
            # the child holds its own dup; drop the acceptor's
            kernel.close(fd)
            yield  # fairness: let handlers/clients run between accepts

    def client(index):
        payload = _payload_for(seed, index)
        try:
            sock = net.connect(addr)
        except ConnectionShed:
            result.shed += 1
            return
        try:
            started = kernel.costs.cycles()
            yield from costream.co_send(sock, _frame(payload),
                                        timeout=wall_timeout)
            header = yield from costream.co_recv_exact(
                sock, 4, timeout=wall_timeout)
            size = int.from_bytes(header, "big")
            reply = yield from costream.co_recv_exact(
                sock, size, timeout=wall_timeout)
            result.latencies.append(kernel.costs.cycles() - started)
            if reply == payload[::-1]:
                result.completed += 1
            else:
                result.mismatches += 1
        finally:
            sock.close()

    start = time.perf_counter()
    try:
        reactor.spawn(acceptor(), name="acceptor",
                      sthread=kernel.main)
        for i in range(connections):
            reactor.spawn(client(i), name=f"client{i}")
        # crashes surface as violations below, not as an abort: a single
        # failed client must not mask the other N-1 results
        reactor.run_until_idle(max_steps=max(5_000_000,
                                             connections * 600),
                               raise_crashes=False)
    except WedgeError as exc:
        result.violations.append(f"reactor run failed: {exc}")
    finally:
        result.wall_seconds = time.perf_counter() - start
        result.peak_live = reactor.peak_live
        result.dispatches = reactor.dispatch_count
        result.double_dispatches = reactor.double_dispatches
        for task, error in reactor.crashed:
            result.errors.append(
                f"{task.name}: {type(error).__name__}: {error}")
        result.total_cycles = kernel.costs.cycles()
        try:
            kernel.close(listen_fd)
        except WedgeError:
            pass
        kernel.kill()

    result._percentiles()
    if result.wall_seconds > wall_timeout:
        result.violations.append(
            f"campaign took {result.wall_seconds:.0f}s "
            f"(cap {wall_timeout:.0f}s)")
    if result.completed != connections:
        result.violations.append(
            f"completed {result.completed} of {connections} "
            f"({result.mismatches} mismatches, {result.shed} shed, "
            f"{len(result.errors)} errors: {result.errors[:3]})")
    if result.mismatches:
        result.violations.append(
            f"{result.mismatches} responses were not the byte-reversed "
            f"payload")
    if result.shed:
        result.violations.append(
            f"{result.shed} connections shed despite an "
            f"admit-everything backlog")
    if result.errors:
        result.violations.append(
            f"tasks crashed: {result.errors[:3]}")
    if result.double_dispatches:
        result.violations.append(
            f"{result.double_dispatches} double dispatches "
            f"(a task was queued while already queued)")
    # all N clients are spawned before the loop starts, so the live-task
    # peak proves the concurrency was real, not an artifact of draining
    # connections one at a time
    if result.peak_live < connections:
        result.violations.append(
            f"peak live tasks {result.peak_live} < {connections}: "
            f"the campaign was not actually concurrent")
    return result
