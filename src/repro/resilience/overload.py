"""The overload campaign: ``python -m repro overload``.

Surge N seeded clients against each shipped app and prove the overload
regime is **bounded, deterministic and correct**:

* the listener's accept queue never exceeds its configured backlog —
  the surplus is shed with a typed
  :class:`~repro.core.errors.ConnectionShed` at the client;
* no byte stream ever buffers past its high-water mark (senders block
  on real backpressure instead);
* the shed *count* is structurally deterministic: the surge happens
  while a "plug" connection holds the sequential server busy, so the
  queue admits exactly ``backlog`` clients and sheds the rest no matter
  how the client threads interleave;
* every admitted request is answered **byte-identically** to an
  unloaded baseline session — load shedding degrades capacity, never
  correctness — and a small surge (≤ backlog) produces identical
  responses with the resilience layer on and off.

The campaign emits ``BENCH_overload.json`` (goodput + shed rate per
app); ``--check`` compares goodput against a committed baseline and
fails on a >10% drop (note the inverted direction vs the model-cycle
artifacts: *lower* goodput is the regression).

Two reactor-era extensions ride on the same artifact:

* ``scheduler="reactor"`` runs every app surge with the kernels on the
  event-driven readiness loop (:mod:`repro.core.reactor`) instead of
  per-connection OS threads — same bounds, same shed counts, same
  byte-identical responses, or the campaign fails;
* ``connections=N`` adds the :mod:`repro.resilience.scale` leg: N
  concurrent echo sessions on **one** reactor kernel, with p50/p95/p99
  latency in deterministic model cycles (``scale_*_cycles`` metrics;
  for those, *higher* is the regression, and ``--check`` skips them
  when the fresh run did not include the leg).

This module imports the shipped apps (via the chaos targets), so it is
deliberately not re-exported from :mod:`repro.resilience`'s
``__init__`` — import it directly, the same discipline as
:mod:`repro.observe.session`.
"""

from __future__ import annotations

import json
import threading
import time

from repro.core.errors import ConnectionShed, WedgeError
from repro.net.stream import ByteStream

#: Generous per-client timeout: an admitted client must wait out the
#: whole sequential drain of the backlog ahead of it without giving up,
#: or goodput would depend on host speed.
OVERLOAD_CLIENT_TIMEOUT = 60.0

DEFAULT_CLIENTS = 200
DEFAULT_BACKLOG = 32
DEFAULT_HIGH_WATER = 64 * 1024

#: ``--check`` fails when goodput drops more than this vs the baseline.
GOODPUT_TOLERANCE = 0.10

#: Surge size for the resilience-on-vs-off comparison leg (must be
#: <= backlog so nothing is shed and the response sets are comparable).
COMPARE_SURGE = 6

#: ``--check`` fails when a scale-leg latency percentile rises more
#: than this vs the baseline (model cycles are deterministic for a
#: given seed and connection count, so the slack only absorbs honest
#: cost-model retunes, not noise).
CYCLES_TOLERANCE = 0.10


def overload_app_names():
    from repro.faults.chaos import CHAOS_APP_NAMES
    return CHAOS_APP_NAMES


def _wait_for(predicate, timeout, what):
    give_up = time.monotonic() + timeout
    while time.monotonic() < give_up:
        if predicate():
            return
        time.sleep(0.002)
    raise WedgeError(f"overload harness timed out waiting for {what}")


def _build_server(app, *, backlog, high_water, audit_streams=True,
                  scheduler=None):
    """Build one chaos-target server with admission control configured.

    The apps construct their :class:`~repro.net.Network` internally, but
    the listener is only created at ``server.start()`` — so the bounds
    can be set on the instance between construction and start, no
    class-attribute juggling needed.  *scheduler* (``"threads"`` /
    ``"reactor"``) selects the kernel scheduling mode for the build via
    :meth:`Kernel.scheduler_override`; ``None`` keeps the default.
    """
    from repro.core.kernel import Kernel
    from repro.faults.chaos import CHAOS_TARGETS
    target = CHAOS_TARGETS[app]
    with Kernel.scheduler_override(scheduler):
        server = target.make(None)
    net = server.network
    if backlog is not None:
        net.default_backlog = backlog
    if high_water is not None:
        net.default_high_water = high_water
    if audit_streams:
        net.streams = []
    return target, server


class AppSurgeResult:
    """One app's surge: counts, peaks, and any bound violations."""

    def __init__(self, app, *, clients, backlog, seed):
        self.app = app
        self.clients = clients
        self.backlog = backlog
        self.seed = seed
        self.admitted_ok = 0
        self.shed = 0
        self.errors = []
        self.stragglers = 0
        self.peak_backlog = 0
        self.peak_stream_buffer = 0
        self.high_water = 0
        self.wall_seconds = 0.0
        self.violations = []

    @property
    def expected_shed(self):
        return max(0, self.clients - self.backlog)

    @property
    def goodput(self):
        return self.admitted_ok / self.clients if self.clients else 0.0

    @property
    def shed_rate(self):
        return self.shed / self.clients if self.clients else 0.0

    @property
    def passed(self):
        return not self.violations

    def format(self):
        lines = [
            f"  {self.app}: {'PASS' if self.passed else 'FAIL'} "
            f"({self.clients} clients vs backlog {self.backlog}, "
            f"{self.wall_seconds:.1f}s)",
            f"    admitted {self.admitted_ok} ok "
            f"(goodput {self.goodput:.2f}), shed {self.shed} "
            f"(rate {self.shed_rate:.2f}), {len(self.errors)} errors",
            f"    peak backlog {self.peak_backlog}/{self.backlog}, "
            f"peak stream buffer {self.peak_stream_buffer}"
            f"/{self.high_water}",
        ]
        for violation in self.violations:
            lines.append(f"    VIOLATION: {violation}")
        return "\n".join(lines)


def run_surge(app, *, clients=DEFAULT_CLIENTS, backlog=DEFAULT_BACKLOG,
              seed=0, high_water=DEFAULT_HIGH_WATER,
              timeout=OVERLOAD_CLIENT_TIMEOUT, scheduler=None):
    """Surge *clients* seeded sessions against *app*; audit the bounds.

    The surge runs behind a **plug**: one connection is opened first and
    accepted, and because every shipped app serves sequentially the
    accept loop is parked on the plug's (never-arriving) request while
    all N surge connects race in.  The queue therefore fills to exactly
    ``backlog`` and sheds exactly ``clients - backlog`` — deterministic
    shed *counts* regardless of thread interleaving (which *threads*
    shed varies; how many never does).  Closing the plug releases the
    server to drain the admitted clients one by one.
    """
    target, server = _build_server(app, backlog=backlog,
                                   high_water=high_water,
                                   scheduler=scheduler)
    net = server.network
    result = AppSurgeResult(app, clients=clients, backlog=backlog,
                            seed=seed)
    result.high_water = high_water
    start = time.perf_counter()
    server.start()
    outcomes = [None] * clients
    try:
        listener = net._listeners[server.addr]
        baseline_obs = target.session(server, f"{seed}-base",
                                      strict=True, timeout=timeout)
        accepted0 = listener.accepted_count
        plug = net.connect(server.addr)
        try:
            _wait_for(lambda: listener.accepted_count > accepted0,
                      10.0, "the plug to be accepted")
            shed0 = listener.shed_count

            def client_body(i):
                try:
                    obs = target.session(server, f"{seed}-c{i}",
                                         strict=True, timeout=timeout)
                    outcomes[i] = ("ok", obs)
                except ConnectionShed:
                    outcomes[i] = ("shed", None)
                except WedgeError as exc:
                    outcomes[i] = ("error",
                                   f"{type(exc).__name__}: {exc}")

            threads = [threading.Thread(target=client_body, args=(i,),
                                        name=f"surge-{app}-{i}",
                                        daemon=True)
                       for i in range(clients)]
            for thread in threads:
                thread.start()
            # every connect must resolve (queued or shed) while the plug
            # still holds the server, or the shed count would race the
            # drain
            _wait_for(
                lambda: (listener.shed_count - shed0
                         + listener.pending_count()) >= clients,
                30.0, "the surge to fully enqueue")
            result.peak_backlog = listener.peak_pending
        finally:
            plug.close()
        give_up = time.monotonic() + timeout
        for thread in threads:
            thread.join(max(0.1, give_up - time.monotonic()))
        result.stragglers = sum(1 for t in threads if t.is_alive())
    finally:
        server.stop()
        result.wall_seconds = time.perf_counter() - start

    for outcome in outcomes:
        if outcome is None:
            continue
        status, detail = outcome
        if status == "shed":
            result.shed += 1
        elif status == "ok":
            if detail == baseline_obs:
                result.admitted_ok += 1
            else:
                result.violations.append(
                    "an admitted request was answered differently "
                    "than the unloaded baseline")
        else:
            result.errors.append(detail)

    result.peak_stream_buffer = max(
        (s.peak_buffered for s in net.streams), default=0)
    if result.peak_backlog > backlog:
        result.violations.append(
            f"peak backlog {result.peak_backlog} exceeded the cap "
            f"{backlog}")
    if result.peak_stream_buffer > high_water:
        result.violations.append(
            f"peak stream buffer {result.peak_stream_buffer} exceeded "
            f"the high-water mark {high_water}")
    if result.shed != result.expected_shed:
        result.violations.append(
            f"shed {result.shed} connections, expected exactly "
            f"{result.expected_shed}")
    if result.admitted_ok != min(clients, backlog):
        result.violations.append(
            f"only {result.admitted_ok} of {min(clients, backlog)} "
            f"admitted requests completed byte-identically "
            f"({len(result.errors)} errors, "
            f"{result.stragglers} stragglers)")
    if result.errors:
        result.violations.append(
            f"admitted sessions failed: {result.errors[:3]}")
    if result.stragglers:
        result.violations.append(
            f"{result.stragglers} client(s) still running at teardown")
    return result


def run_comparison(app, *, surge=COMPARE_SURGE, seed=0,
                   backlog=DEFAULT_BACKLOG,
                   high_water=DEFAULT_HIGH_WATER,
                   timeout=OVERLOAD_CLIENT_TIMEOUT, scheduler=None):
    """Byte-identical responses with the resilience layer on vs off.

    Runs the same small surge (≤ backlog, so nothing is shed) twice:
    once with the configured bounds and once effectively unbounded
    (the pre-resilience behaviour), and demands the two response sets
    are identical to each other and to their unloaded baselines.
    """
    surge = min(surge, backlog)
    observed = {}
    for label, (cap, hw) in (("on", (backlog, high_water)),
                             ("off", (1 << 30, 1 << 30))):
        target, server = _build_server(app, backlog=cap, high_water=hw,
                                       scheduler=scheduler)
        server.start()
        try:
            baseline = target.session(server, f"{seed}-cmp-base",
                                      strict=True, timeout=timeout)
            results = [None] * surge

            def body(i):
                try:
                    results[i] = target.session(
                        server, f"{seed}-cmp{i}", strict=True,
                        timeout=timeout)
                except WedgeError as exc:
                    results[i] = f"{type(exc).__name__}: {exc}"

            threads = [threading.Thread(target=body, args=(i,),
                                        daemon=True)
                       for i in range(surge)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout)
            observed[label] = {"baseline": baseline, "results": results}
        finally:
            server.stop()
    on, off = observed["on"], observed["off"]
    identical = (
        on["baseline"] == off["baseline"]
        and on["results"] == off["results"]
        and all(obs == on["baseline"] for obs in on["results"]))
    return {"app": app, "surge": surge, "identical": identical,
            "on": on["results"], "off": off["results"]}


def backpressure_probe(*, high_water=4096, payload=64 * 1024,
                       chunk=1024):
    """Directly exercise the bounded-blocking send path.

    A fast sender pushes *payload* bytes through a stream whose
    high-water mark is far smaller, against a deliberately slow reader:
    the send must block (``backpressure_waits > 0``), the buffer must
    never exceed the mark, and every byte must still arrive in order.
    """
    stream = ByteStream("overload-probe", high_water=high_water)
    received = bytearray()

    def reader():
        while True:
            data = stream.recv(chunk, timeout=10.0)
            if data is None:
                return
            received.extend(data)
            time.sleep(0.0005)   # slow consumer: force the sender to wait

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    payload_bytes = bytes(range(256)) * (payload // 256)
    sent = stream.send(payload_bytes, timeout=30.0)
    stream.close()
    thread.join(30.0)
    return {
        "high_water": high_water,
        "sent": sent,
        "intact": bytes(received) == payload_bytes,
        "peak_buffered": stream.peak_buffered,
        "backpressure_waits": stream.backpressure_waits,
        "bounded": stream.peak_buffered <= high_water,
        "engaged": stream.backpressure_waits > 0,
    }


class OverloadReport:
    """The whole campaign: per-app surges + comparison + probe."""

    def __init__(self, *, clients, backlog, seed, high_water,
                 scheduler=None):
        self.clients = clients
        self.backlog = backlog
        self.seed = seed
        self.high_water = high_water
        self.scheduler = scheduler
        self.surges = {}
        self.comparisons = {}
        self.probe = None
        self.scale = None

    @property
    def passed(self):
        return (all(s.passed for s in self.surges.values())
                and all(c["identical"]
                        for c in self.comparisons.values())
                and (self.probe is None
                     or (self.probe["bounded"] and self.probe["engaged"]
                         and self.probe["intact"]))
                and (self.scale is None or self.scale.passed))

    def format(self):
        mode = f", scheduler {self.scheduler}" if self.scheduler else ""
        lines = [f"overload seed={self.seed}: "
                 f"{'PASS' if self.passed else 'FAIL'} "
                 f"({self.clients} clients, backlog {self.backlog}, "
                 f"high-water {self.high_water}{mode})"]
        for surge in self.surges.values():
            lines.append(surge.format())
        if self.scale is not None:
            lines.append(self.scale.format())
        for app, cmp in self.comparisons.items():
            lines.append(
                f"  {app}: resilience on-vs-off "
                f"({cmp['surge']} sessions): "
                f"{'byte-identical' if cmp['identical'] else 'DIVERGED'}")
        if self.probe is not None:
            p = self.probe
            lines.append(
                f"  backpressure probe: peak {p['peak_buffered']}"
                f"/{p['high_water']} bytes, {p['backpressure_waits']} "
                f"waits, payload {'intact' if p['intact'] else 'LOST'}"
                f" -> {'ok' if p['bounded'] and p['engaged'] else 'FAIL'}")
        return "\n".join(lines)

    def artifact(self):
        """The ``BENCH_overload.json`` payload.

        ``metrics`` carries goodput (checked: **lower** is a
        regression) and shed rate (checked: higher is a regression);
        ``wall`` is recorded for the trajectory, never checked.
        """
        metrics = {}
        wall = {}
        for app, surge in self.surges.items():
            metrics[f"{app}_goodput"] = round(surge.goodput, 4)
            metrics[f"{app}_shed_rate"] = round(surge.shed_rate, 4)
            wall[f"{app}_seconds"] = surge.wall_seconds
        info = {
            "clients": self.clients,
            "backlog": self.backlog,
            "seed": self.seed,
            "high_water": self.high_water,
            "scheduler": self.scheduler,
            "passed": self.passed,
            "shed": {app: s.shed for app, s in self.surges.items()},
            "peak_backlog": {app: s.peak_backlog
                             for app, s in self.surges.items()},
            "peak_stream_buffer": {app: s.peak_stream_buffer
                                   for app, s in self.surges.items()},
        }
        if self.scale is not None:
            metrics["scale_p50_cycles"] = self.scale.p50
            metrics["scale_p95_cycles"] = self.scale.p95
            metrics["scale_p99_cycles"] = self.scale.p99
            wall["scale_seconds"] = self.scale.wall_seconds
            info["scale"] = {
                "connections": self.scale.connections,
                "completed": self.scale.completed,
                "shed": self.scale.shed,
                "mismatches": self.scale.mismatches,
                "peak_live": self.scale.peak_live,
                "dispatches": self.scale.dispatches,
            }
        return {"artifact": "overload", "metrics": metrics,
                "wall": wall, "info": info}


def run_overload(apps=None, *, clients=DEFAULT_CLIENTS,
                 backlog=DEFAULT_BACKLOG, seed=0,
                 high_water=DEFAULT_HIGH_WATER,
                 timeout=OVERLOAD_CLIENT_TIMEOUT, compare=True,
                 scheduler=None, connections=0):
    """Run the full campaign; returns an :class:`OverloadReport`.

    ``scheduler`` runs the per-app surges under that kernel scheduling
    mode (``"threads"``/``"reactor"``); ``connections > 0`` appends the
    reactor-native scale leg (:func:`repro.resilience.scale.run_scale`)
    at that connection count.
    """
    names = list(apps) if apps else list(overload_app_names())
    report = OverloadReport(clients=clients, backlog=backlog, seed=seed,
                            high_water=high_water, scheduler=scheduler)
    for app in names:
        report.surges[app] = run_surge(
            app, clients=clients, backlog=backlog, seed=seed,
            high_water=high_water, timeout=timeout,
            scheduler=scheduler)
        if compare:
            report.comparisons[app] = run_comparison(
                app, seed=seed, backlog=backlog, high_water=high_water,
                timeout=timeout, scheduler=scheduler)
    report.probe = backpressure_probe()
    if connections:
        from repro.resilience.scale import run_scale
        report.scale = run_scale(connections=connections, seed=seed)
    return report


def check_artifact(new, baseline, *, tolerance=GOODPUT_TOLERANCE):
    """Compare a fresh artifact against the committed baseline.

    Returns a list of problem strings (empty = clean).  Goodput is
    checked inverted — a drop beyond *tolerance* fails; a shed-rate
    *rise* beyond tolerance (plus an absolute epsilon for near-zero
    baselines) fails too.  ``_cycles`` keys (the scale leg's latency
    percentiles) check in the usual model-cycle direction — higher is
    the regression — and are skipped when the fresh run did not include
    the scale leg (it is opt-in via ``--connections``).
    """
    problems = []
    for key, old in sorted(baseline.get("metrics", {}).items()):
        value = new.get("metrics", {}).get(key)
        if value is None:
            if not key.endswith("_cycles"):
                problems.append(f"{key}: missing from new run")
            continue
        if key.endswith("_cycles"):
            ceiling = old * (1 + CYCLES_TOLERANCE)
            if value > ceiling:
                problems.append(
                    f"{key}: {old:,} -> {value:,} "
                    f"(latency rose beyond {CYCLES_TOLERANCE:.0%})")
        elif key.endswith("_goodput"):
            floor = old * (1 - tolerance)
            if value < floor:
                problems.append(
                    f"{key}: {old:.3f} -> {value:.3f} "
                    f"(goodput regression beyond {tolerance:.0%})")
        elif key.endswith("_shed_rate"):
            ceiling = old * (1 + tolerance) + 0.01
            if value > ceiling:
                problems.append(
                    f"{key}: {old:.3f} -> {value:.3f} "
                    f"(shed rate rose beyond {tolerance:.0%})")
    return problems


def write_artifact(report, path):
    payload = report.artifact()
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
