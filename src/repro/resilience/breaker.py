"""Circuit breaker: make a degraded callgate recoverable.

PR 2's supervision gives a gate a restart budget; past it the gate turns
terminally *degraded* and every later invocation raises
:class:`~repro.core.errors.CallgateDegraded` forever.  That is the right
fail-fast default, but the paper's availability argument (§3.1 — a
crashed compartment is recoverable without restarting the application)
wants a way back.  The breaker is that way back:

* **closed** — healthy; invocations flow, failures are the supervisor's
  problem.
* **open** — the gate degraded; calls fail fast with
  ``CallgateDegraded`` (no restart attempts, no queue build-up) until a
  cooldown elapses.
* **half-open** — the cooldown elapsed; exactly **one** probe invocation
  is admitted.  Success closes the breaker (the gate rebuilds from the
  pristine COW snapshot and is healthy again); failure re-opens it with
  an escalated cooldown.

The state machine is deliberately strict: the only legal transitions are
``closed→open``, ``open→half_open``, ``half_open→closed`` and
``half_open→open``.  Anything else raises, which is what the property
tests lean on.  The clock is injectable so those tests are fully
deterministic.
"""

from __future__ import annotations

import threading
import time

from repro.core.errors import WedgeError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: The legal edges of the state machine (from -> allowed targets).
TRANSITIONS = {
    CLOSED: (OPEN,),
    OPEN: (HALF_OPEN,),
    HALF_OPEN: (CLOSED, OPEN),
}


class BreakerPolicy:
    """Tunables for a :class:`CircuitBreaker`.

    ``cooldown`` is the open interval before the first probe; each
    re-open multiplies it by ``cooldown_factor`` up to ``max_cooldown``
    (the same escalation discipline as RestartPolicy's backoff).
    """

    def __init__(self, cooldown=0.05, *, cooldown_factor=2.0,
                 max_cooldown=1.0):
        if cooldown < 0:
            raise WedgeError("breaker cooldown must be >= 0")
        self.cooldown = float(cooldown)
        self.cooldown_factor = float(cooldown_factor)
        self.max_cooldown = float(max_cooldown)

    def __repr__(self):
        return (f"<BreakerPolicy cooldown={self.cooldown} "
                f"factor={self.cooldown_factor}>")


class CircuitBreaker:
    """One gate's breaker: strict three-state machine with cooldown."""

    def __init__(self, policy=None, *, clock=time.monotonic):
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self.state = CLOSED
        self.opened_at = None
        self.current_cooldown = self.policy.cooldown
        self.open_count = 0
        self.probe_count = 0
        self.recoveries = 0
        #: audit log of (from_state, to_state) pairs, for tests and dumps
        self.transitions = []

    def _transition(self, new_state):
        if new_state not in TRANSITIONS[self.state]:
            raise WedgeError(
                f"illegal breaker transition {self.state} -> {new_state}")
        self.transitions.append((self.state, new_state))
        self.state = new_state

    # -- edges ---------------------------------------------------------------

    def trip(self):
        """The supervised gate degraded: open the breaker."""
        with self._lock:
            if self.state == OPEN:
                return
            self._transition(OPEN)
            self.opened_at = self._clock()
            self.open_count += 1

    def try_probe(self):
        """Admit one half-open probe if the cooldown has elapsed.

        Returns ``True`` for the single admitted caller; every other
        caller (cooldown still running, or a probe already in flight)
        gets ``False`` and should fail fast.
        """
        with self._lock:
            if self.state != OPEN:
                return False
            if self._clock() - self.opened_at < self.current_cooldown:
                return False
            self._transition(HALF_OPEN)
            self.probe_count += 1
            return True

    def probe_succeeded(self):
        """The half-open probe worked: close (the gate recovered)."""
        with self._lock:
            self._transition(CLOSED)
            self.opened_at = None
            self.current_cooldown = self.policy.cooldown
            self.recoveries += 1

    def probe_failed(self):
        """The half-open probe died: re-open with escalated cooldown."""
        with self._lock:
            self._transition(OPEN)
            self.opened_at = self._clock()
            self.open_count += 1
            self.current_cooldown = min(
                self.current_cooldown * self.policy.cooldown_factor,
                self.policy.max_cooldown)

    def __repr__(self):
        return (f"<CircuitBreaker {self.state} opens={self.open_count} "
                f"recoveries={self.recoveries}>")
